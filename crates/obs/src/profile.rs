//! Per-site stall profiles and profile diffs.

use std::collections::BTreeMap;

use wmm_sim::stats::SiteStall;
use wmm_sim::FenceKind;
use wmmbench::image::SiteMap;
use wmmbench::json::{Json, ToJson};

/// One named site's cycles, split by cause and accumulated over every
/// sited sample that executed it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteProfile {
    /// Fence kind executed at the site, if any.
    pub fence: Option<FenceKind>,
    /// Fence executions.
    pub fences: u64,
    /// Times the site was folded (≈ samples that executed it).
    pub executions: u64,
    /// Cycles stalled in fences.
    pub fence_cycles: f64,
    /// Cycles lost to store-buffer capacity stalls.
    pub sb_stall_cycles: f64,
    /// Exposed memory-access cycles.
    pub mem_cycles: f64,
    /// Total cycles the site advanced its core's clock by.
    pub total_cycles: f64,
}

impl SiteProfile {
    /// Fold one run's stall record into the profile.
    pub fn add(&mut self, s: &SiteStall) {
        if s.fence.is_some() {
            self.fence = s.fence;
        }
        self.fences += s.fences;
        self.executions += 1;
        self.fence_cycles += s.fence_cycles;
        self.sb_stall_cycles += s.sb_stall_cycles;
        self.mem_cycles += s.mem_cycles;
        self.total_cycles += s.total_cycles;
    }

    /// Merge another profile of the same site.
    pub fn merge(&mut self, other: &SiteProfile) {
        if other.fence.is_some() {
            self.fence = other.fence;
        }
        self.fences += other.fences;
        self.executions += other.executions;
        self.fence_cycles += other.fence_cycles;
        self.sb_stall_cycles += other.sb_stall_cycles;
        self.mem_cycles += other.mem_cycles;
        self.total_cycles += other.total_cycles;
    }

    /// Cycles not attributed to fences, store-buffer stalls or memory —
    /// the residual compute time (clamped at zero against float noise).
    pub fn compute_cycles(&self) -> f64 {
        (self.total_cycles - self.fence_cycles - self.sb_stall_cycles - self.mem_cycles).max(0.0)
    }
}

/// A campaign-level profile: per-site stall accounts keyed by stable site
/// name. `BTreeMap` keeps iteration (and every export) in deterministic
/// name order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-site accounts, by site name.
    pub sites: BTreeMap<String, SiteProfile>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Fold one sited run into the profile. `map` names each `(thread,
    /// index)` site; instructions the map cannot name (out of range —
    /// should not happen for a map linked with the run's program) fall
    /// back to a positional `t{thread}:#{index}` name rather than being
    /// dropped, so cycle totals are conserved.
    ///
    /// Site keys are interned: a key's `String` is allocated only the first
    /// time the site appears in the campaign; every later record (the steady
    /// state — one per executed site instruction per run) folds through a
    /// borrowed-`&str` lookup with no allocation.
    pub fn add_run(&mut self, sites: &[SiteStall], map: &SiteMap) {
        let mut fallback = String::new();
        for s in sites {
            let name: &str = match map.name(s.thread as usize, s.index as usize) {
                Some(n) => n,
                None => {
                    use std::fmt::Write as _;
                    fallback.clear();
                    let _ = write!(fallback, "t{}:#{}", s.thread, s.index);
                    &fallback
                }
            };
            match self.sites.get_mut(name) {
                Some(sp) => sp.add(s),
                None => self.sites.entry(name.to_string()).or_default().add(s),
            }
        }
    }

    /// Merge another profile (e.g. another benchmark's fold) site-wise.
    pub fn merge(&mut self, other: &Profile) {
        for (name, sp) in &other.sites {
            self.sites.entry(name.clone()).or_default().merge(sp);
        }
    }

    /// Sum of fence stall cycles over sites whose fence is `kind` — the
    /// per-site account of the simulator's per-kind totals. Agrees with
    /// `ExecStats::fence_stall_cycles` summed over the same runs to float
    /// reassociation (≈1e-9 relative), not bitwise.
    pub fn fence_stall_cycles(&self, kind: FenceKind) -> f64 {
        self.sites
            .values()
            .filter(|s| s.fence == Some(kind))
            .map(|s| s.fence_cycles)
            .sum()
    }

    /// Total cycles across all sites.
    pub fn total_cycles(&self) -> f64 {
        self.sites.values().map(|s| s.total_cycles).sum()
    }

    /// Site-by-site comparison `test - base`, sorted by absolute total
    /// delta (largest first; ties broken by name for determinism). Sites
    /// present on only one side diff against an implicit zero profile.
    pub fn diff(&self, test: &Profile) -> ProfileDiff {
        let zero = SiteProfile::default();
        let mut names: Vec<&String> = self.sites.keys().chain(test.sites.keys()).collect();
        names.sort();
        names.dedup();
        let mut rows: Vec<SiteDelta> = names
            .into_iter()
            .map(|name| {
                let b = self.sites.get(name).unwrap_or(&zero);
                let t = test.sites.get(name).unwrap_or(&zero);
                SiteDelta {
                    name: name.clone(),
                    base_cycles: b.total_cycles,
                    test_cycles: t.total_cycles,
                    delta_cycles: t.total_cycles - b.total_cycles,
                    fence_delta: t.fence_cycles - b.fence_cycles,
                    sb_delta: t.sb_stall_cycles - b.sb_stall_cycles,
                    mem_delta: t.mem_cycles - b.mem_cycles,
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.delta_cycles
                .abs()
                .partial_cmp(&a.delta_cycles.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        ProfileDiff { rows }
    }
}

impl ToJson for SiteProfile {
    fn to_json(&self) -> Json {
        let mut pairs = vec![];
        if let Some(k) = self.fence {
            pairs.push(("fence", k.mnemonic().to_json()));
        }
        pairs.push(("fences", self.fences.to_json()));
        pairs.push(("executions", self.executions.to_json()));
        pairs.push(("fence_cycles", Json::Num(self.fence_cycles)));
        pairs.push(("sb_stall_cycles", Json::Num(self.sb_stall_cycles)));
        pairs.push(("mem_cycles", Json::Num(self.mem_cycles)));
        pairs.push(("compute_cycles", Json::Num(self.compute_cycles())));
        pairs.push(("total_cycles", Json::Num(self.total_cycles)));
        Json::obj(pairs)
    }
}

impl ToJson for Profile {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.sites
                .iter()
                .map(|(name, sp)| {
                    let mut json = sp.to_json();
                    if let Json::Obj(pairs) = &mut json {
                        pairs.insert(0, ("name".to_string(), name.to_json()));
                    }
                    json
                })
                .collect(),
        )
    }
}

/// One site's contribution to a campaign-level delta.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteDelta {
    /// Site name.
    pub name: String,
    /// Base total cycles.
    pub base_cycles: f64,
    /// Test total cycles.
    pub test_cycles: f64,
    /// `test - base` total cycles.
    pub delta_cycles: f64,
    /// `test - base` fence stall cycles.
    pub fence_delta: f64,
    /// `test - base` store-buffer stall cycles.
    pub sb_delta: f64,
    /// `test - base` exposed memory cycles.
    pub mem_delta: f64,
}

/// A site-by-site profile comparison, rows sorted by `|delta|` descending.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileDiff {
    /// Per-site deltas, largest absolute movement first.
    pub rows: Vec<SiteDelta>,
}

impl ProfileDiff {
    /// Signed total delta (test − base), cycles.
    pub fn total_delta(&self) -> f64 {
        self.rows.iter().map(|r| r.delta_cycles).sum()
    }

    /// Sum of absolute per-site deltas, cycles.
    pub fn abs_delta(&self) -> f64 {
        self.rows.iter().map(|r| r.delta_cycles.abs()).sum()
    }

    /// Fraction of the absolute delta attributed to rows matching `pred`
    /// (0 when nothing moved). This is how a strategy change's cost is
    /// attributed: e.g. the share of a JDK8→JDK9 delta carried by
    /// volatile-access sites.
    pub fn share(&self, pred: impl Fn(&SiteDelta) -> bool) -> f64 {
        let total = self.abs_delta();
        if total == 0.0 {
            return 0.0;
        }
        self.rows
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.delta_cycles.abs())
            .sum::<f64>()
            / total
    }

    /// Fraction of the absolute *fence-stall* delta attributed to rows
    /// matching `pred` (0 when no fence cost moved). Where [`share`]
    /// attributes the whole wall delta — including memory-timing ripple a
    /// fencing change causes downstream — this isolates the fence cost the
    /// change moved directly: the right gate when comparing two fencing
    /// schemes over the same images (e.g. classic vs asymmetric hazard
    /// pointers, where the protect sites shed a `dmb` each and the rare
    /// scan picks up a heavy sequence).
    ///
    /// [`share`]: ProfileDiff::share
    pub fn fence_share(&self, pred: impl Fn(&SiteDelta) -> bool) -> f64 {
        let total: f64 = self.rows.iter().map(|r| r.fence_delta.abs()).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.rows
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.fence_delta.abs())
            .sum::<f64>()
            / total
    }

    /// The `n` rows with the largest absolute deltas.
    pub fn top(&self, n: usize) -> &[SiteDelta] {
        &self.rows[..n.min(self.rows.len())]
    }
}

impl ToJson for ProfileDiff {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("name", r.name.to_json()),
                        ("base_cycles", Json::Num(r.base_cycles)),
                        ("test_cycles", Json::Num(r.test_cycles)),
                        ("delta_cycles", Json::Num(r.delta_cycles)),
                        ("fence_delta", Json::Num(r.fence_delta)),
                        ("sb_delta", Json::Num(r.sb_delta)),
                        ("mem_delta", Json::Num(r.mem_delta)),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stall(thread: u32, index: u32, fence: Option<FenceKind>, cycles: f64) -> SiteStall {
        SiteStall {
            thread,
            index,
            fence,
            fences: fence.is_some() as u64,
            fence_cycles: if fence.is_some() { cycles } else { 0.0 },
            sb_stall_cycles: 0.0,
            mem_cycles: 0.0,
            total_cycles: cycles,
        }
    }

    fn named_profile(entries: &[(&str, f64)]) -> Profile {
        let mut p = Profile::new();
        for &(name, cycles) in entries {
            p.sites.entry(name.to_string()).or_default().add(&stall(
                0,
                0,
                Some(FenceKind::DmbIsh),
                cycles,
            ));
        }
        p
    }

    #[test]
    fn fold_accumulates_by_cause_and_exposes_compute() {
        let mut sp = SiteProfile::default();
        sp.add(&SiteStall {
            thread: 0,
            index: 3,
            fence: Some(FenceKind::DmbIsh),
            fences: 1,
            fence_cycles: 12.0,
            sb_stall_cycles: 2.0,
            mem_cycles: 4.0,
            total_cycles: 20.0,
        });
        sp.add(&SiteStall {
            thread: 0,
            index: 3,
            fence: Some(FenceKind::DmbIsh),
            fences: 1,
            fence_cycles: 10.0,
            sb_stall_cycles: 0.0,
            mem_cycles: 1.0,
            total_cycles: 13.0,
        });
        assert_eq!(sp.executions, 2);
        assert_eq!(sp.fences, 2);
        assert_eq!(sp.fence_cycles, 22.0);
        assert_eq!(sp.compute_cycles(), 33.0 - 22.0 - 2.0 - 5.0);
    }

    #[test]
    fn diff_sorts_by_absolute_delta_and_handles_one_sided_sites() {
        let base = named_profile(&[("a", 10.0), ("b", 5.0), ("gone", 2.0)]);
        let test = named_profile(&[("a", 11.0), ("b", 25.0), ("new", 4.0)]);
        let d = base.diff(&test);
        let names: Vec<&str> = d.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["b", "new", "gone", "a"]);
        assert_eq!(d.rows[0].delta_cycles, 20.0);
        assert_eq!(d.rows[1].base_cycles, 0.0);
        assert_eq!(d.rows[2].test_cycles, 0.0);
        assert!((d.total_delta() - (1.0 + 20.0 - 2.0 + 4.0)).abs() < 1e-12);
        assert_eq!(d.abs_delta(), 27.0);
        let b_share = d.share(|r| r.name == "b");
        assert!((b_share - 20.0 / 27.0).abs() < 1e-12);
        assert_eq!(d.top(2).len(), 2);
        assert_eq!(d.top(99).len(), 4);
    }

    #[test]
    fn profile_json_is_name_ordered() {
        let p = named_profile(&[("z", 1.0), ("a", 2.0)]);
        let text = p.to_json().to_string();
        assert!(text.find("\"a\"").unwrap() < text.find("\"z\"").unwrap());
        assert!(text.contains("dmb ish"));
    }
}
