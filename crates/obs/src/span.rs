//! Span tracing: named wall-clock intervals that nest into the harness's
//! Chrome-trace export.
//!
//! A [`SpanLog`] is a shared, append-only list of completed
//! [`SpanRecord`]s, timestamped in microseconds since the log's creation
//! (the same epoch convention the executor's batch/job trace uses, so the
//! two streams merge onto one timeline). [`SpanLog::span`] returns a
//! [`SpanGuard`] that records the interval when dropped — callers wrap a
//! phase in a guard and never touch clocks directly:
//!
//! ```
//! let log = wmm_obs::SpanLog::new();
//! {
//!     let _s = log.span("fit", "report");
//!     // ... the phase being timed ...
//! }
//! assert_eq!(log.records().len(), 1);
//! ```
//!
//! Spans are observational by construction (they are wall-clock
//! measurements), so they live with the Chrome trace on the non-gated side
//! of every artifact.

use std::sync::Mutex;
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span label, e.g. `"campaign fig5-arm"`.
    pub name: String,
    /// Category, filterable in the trace viewer (e.g. `"report"`).
    pub cat: &'static str,
    /// Start, microseconds since the log epoch.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Track id the span renders on (0 = the caller's main track).
    pub tid: u64,
}

/// A shared log of completed spans with one common epoch.
#[derive(Debug)]
pub struct SpanLog {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new()
    }
}

impl SpanLog {
    /// A fresh log; the epoch is now.
    #[must_use]
    pub fn new() -> Self {
        SpanLog {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds since the log epoch.
    #[must_use]
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Open a span on track 0; it records itself when the guard drops.
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> SpanGuard<'_> {
        self.span_on(name, cat, 0)
    }

    /// Open a span on an explicit track.
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span_on(&self, name: impl Into<String>, cat: &'static str, tid: u64) -> SpanGuard<'_> {
        SpanGuard {
            log: self,
            name: name.into(),
            cat,
            tid,
            ts_us: self.now_us(),
            t0: Instant::now(),
        }
    }

    /// Append an already-built record (for spans reconstructed from other
    /// sources rather than timed live).
    pub fn record(&self, record: SpanRecord) {
        self.spans.lock().expect("span log poisoned").push(record);
    }

    /// Snapshot of the completed spans, in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span log poisoned").clone()
    }

    /// Completed span count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span log poisoned").len()
    }

    /// Whether no span has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An open span; records itself into its [`SpanLog`] on drop.
#[derive(Debug)]
pub struct SpanGuard<'l> {
    log: &'l SpanLog,
    name: String,
    cat: &'static str,
    tid: u64,
    ts_us: f64,
    t0: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.log.record(SpanRecord {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            ts_us: self.ts_us,
            dur_us: self.t0.elapsed().as_secs_f64() * 1e6,
            tid: self.tid,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop_with_nonnegative_interval() {
        let log = SpanLog::new();
        {
            let _outer = log.span("outer", "test");
            let _inner = log.span_on("inner", "test", 3);
        }
        // Inner dropped first.
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[0].tid, 3);
        assert_eq!(records[1].name, "outer");
        for r in &records {
            assert!(r.ts_us >= 0.0 && r.dur_us >= 0.0, "{r:?}");
        }
        // The outer span opened no later than the inner one.
        assert!(records[1].ts_us <= records[0].ts_us);
    }

    #[test]
    fn explicit_records_append_verbatim() {
        let log = SpanLog::new();
        assert!(log.is_empty());
        log.record(SpanRecord {
            name: "synthetic".into(),
            cat: "test",
            ts_us: 10.0,
            dur_us: 0.0,
            tid: 7,
        });
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].dur_us, 0.0, "zero-duration spans kept");
    }

    #[test]
    fn spans_record_across_threads() {
        let log = SpanLog::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let log = &log;
                scope.spawn(move || {
                    let _s = log.span_on(format!("worker {t}"), "test", t + 1);
                });
            }
        });
        assert_eq!(log.len(), 4);
    }
}
