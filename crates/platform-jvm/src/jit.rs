//! A JIT-like lowering from Java-level operations to instruction streams
//! with labelled barrier sites.
//!
//! This models the surface the paper instruments: "we modified the low-level
//! assembler of the JIT compiler to change the barrier instruction sequence,
//! inserting nop instructions or the cost functions" (§4.2). Java operations
//! (volatile accesses, monitor enter/exit, CAS, allocation with GC card
//! marks) lower to plain simulator instructions plus [`Combined`] barrier
//! *sites*; the fencing strategy and injector then decide what each site
//! becomes.
//!
//! Architecture differences follow the paper's observation that "the
//! developers of the ARM implementation are more defensive, adding more
//! `LoadLoad` and `LoadStore` barriers than the Power developers":
//!
//! * **`ARMv8`, barrier mode** (JDK8 / `UseBarriersForVolatile`): volatile
//!   stores are bracketed by *full* `Volatile` barriers, and the C2 locking
//!   code emits an extra `Volatile` barrier per monitor operation — the
//!   `dmb`s that the pending DMB-elimination patch removes (§4.2.1).
//! * **`ARMv8`, JDK9 mode**: volatile accesses become `ldar`/`stlr` with no
//!   barrier sites at all.
//! * **POWER**: volatile loads/stores use the composite barriers exactly as
//!   §4.2 lists them; monitor exit is a `Release` site; monitor enter is an
//!   acquiring CAS with no separate barrier site.
//!
//! GC card marks (a `StoreStore` site per reference store) are emitted on
//! both architectures — they are the dominant source of the pure
//! `StoreStore` sensitivity that spark exhibits in Fig. 6.

use wmm_sim::arch::Arch;
use wmm_sim::isa::{AccessOrd, Instr, Loc};
use wmmbench::image::Segment;

use crate::barrier::{Combined, Composite};

/// How volatile accesses are implemented (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolatileMode {
    /// JDK8 behaviour / `-XX:+UseBarriersForVolatile`: explicit barriers.
    Barriers,
    /// JDK9 behaviour on `ARMv8`: `ldar`/`stlr` instructions.
    LoadAcquireStoreRelease,
}

/// JIT configuration for one compilation.
#[derive(Debug, Clone, Copy)]
pub struct JitConfig {
    /// Target architecture (selects the composite tables).
    pub arch: Arch,
    /// Volatile implementation.
    pub volatile_mode: VolatileMode,
    /// Whether the pending DMB-elimination locking patch [Haley 2015] is
    /// applied: monitor operations lose their extra `Volatile` barrier.
    /// With barriers mode the restructured lock paths retry marginally more
    /// (the paper's unexplained −1%; see DESIGN.md).
    pub locking_patch: bool,
}

impl JitConfig {
    /// Stock JDK9 configuration for an architecture: POWER keeps barriers,
    /// ARM uses load-acquire/store-release.
    #[must_use]
    pub fn jdk9(arch: Arch) -> Self {
        JitConfig {
            arch,
            volatile_mode: match arch {
                Arch::ArmV8 => VolatileMode::LoadAcquireStoreRelease,
                Arch::Power7 => VolatileMode::Barriers,
            },
            locking_patch: false,
        }
    }

    /// JDK8 behaviour (barriers everywhere).
    #[must_use]
    pub fn jdk8(arch: Arch) -> Self {
        JitConfig {
            arch,
            volatile_mode: VolatileMode::Barriers,
            locking_patch: false,
        }
    }
}

/// Java-level operations produced by workload generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JavaOp {
    /// Straight-line computation worth `cycles` cycles.
    Work(u32),
    /// Plain field load.
    FieldLoad(Loc),
    /// Plain field store.
    FieldStore(Loc),
    /// Reference store: field store plus GC card mark (`StoreStore` site).
    RefStore(Loc),
    /// Volatile field load.
    VolatileLoad(Loc),
    /// Volatile field store.
    VolatileStore(Loc),
    /// Monitor (synchronized block) entry on a lock object.
    MonitorEnter(u64),
    /// Monitor exit.
    MonitorExit(u64),
    /// `java.util.concurrent` CAS.
    Cas(Loc),
    /// Allocation: TLAB bump (private stores) of roughly `words` words.
    Alloc(u32),
    /// Explicit `Unsafe`/`VarHandle` fence.
    Fence(Composite),
}

/// Lower per-thread Java operation streams to image segments.
#[must_use]
pub fn lower(threads: &[Vec<JavaOp>], cfg: &JitConfig) -> Vec<Vec<Segment<Combined>>> {
    threads.iter().map(|ops| lower_thread(ops, *cfg)).collect()
}

// One arm per JavaOp; splitting the match would obscure the lowering table.
#[allow(clippy::too_many_lines)]
fn lower_thread(ops: &[JavaOp], cfg: JitConfig) -> Vec<Segment<Combined>> {
    let mut segs: Vec<Segment<Combined>> = Vec::new();
    let mut code: Vec<Instr> = Vec::new();
    let flush = |code: &mut Vec<Instr>, segs: &mut Vec<Segment<Combined>>| {
        if !code.is_empty() {
            segs.push(Segment::Code(std::mem::take(code)));
        }
    };
    let site = |segs: &mut Vec<Segment<Combined>>, code: &mut Vec<Instr>, c: Combined| {
        if !code.is_empty() {
            segs.push(Segment::Code(std::mem::take(code)));
        }
        segs.push(Segment::Site(c));
    };
    // Volatile accesses are tagged with a label in *every* volatile mode, so
    // per-site profiles of barrier and ldar/stlr JITs put the access cost on
    // the same row and a cross-JIT diff isolates the ordering surcharge.
    let labeled = |segs: &mut Vec<Segment<Combined>>,
                   code: &mut Vec<Instr>,
                   label: &'static str,
                   i: Instr| {
        if !code.is_empty() {
            segs.push(Segment::Code(std::mem::take(code)));
        }
        segs.push(Segment::Labeled(label, vec![i]));
    };

    let lasr = cfg.volatile_mode == VolatileMode::LoadAcquireStoreRelease;
    // ARM's C2 locking code carries extra full barriers unless patched.
    let arm_lock_dmb = cfg.arch == Arch::ArmV8 && !cfg.locking_patch;
    // See JitConfig::locking_patch: restructured lock paths with plain
    // barriers retry marginally more.
    let cas_success = if cfg.locking_patch && !lasr {
        0.20
    } else {
        0.95
    };

    for op in ops {
        match *op {
            JavaOp::Work(cycles) => code.push(Instr::Compute { cycles }),
            JavaOp::FieldLoad(loc) => code.push(Instr::Load {
                loc,
                ord: AccessOrd::Plain,
            }),
            JavaOp::FieldStore(loc) => code.push(Instr::Store {
                loc,
                ord: AccessOrd::Plain,
            }),
            JavaOp::RefStore(loc) => {
                code.push(Instr::Store {
                    loc,
                    ord: AccessOrd::Plain,
                });
                // GC card-table mark: a byte store that must not overtake
                // the reference store — a pure StoreStore site.
                site(
                    &mut segs,
                    &mut code,
                    Combined::only(crate::barrier::Elemental::StoreStore),
                );
                code.push(Instr::Store {
                    loc: Loc::SharedRo(0xCA4D ^ (loc.line() % 64)),
                    ord: AccessOrd::Plain,
                });
            }
            JavaOp::VolatileLoad(loc) => {
                if lasr {
                    labeled(
                        &mut segs,
                        &mut code,
                        "vol.ld",
                        Instr::Load {
                            loc,
                            ord: AccessOrd::Acquire,
                        },
                    );
                } else {
                    // "each volatile load is preceded by an invocation of
                    // the Volatile barrier and followed by Acquire" (§4.2).
                    site(&mut segs, &mut code, Composite::Volatile.combined());
                    labeled(
                        &mut segs,
                        &mut code,
                        "vol.ld",
                        Instr::Load {
                            loc,
                            ord: AccessOrd::Plain,
                        },
                    );
                    site(&mut segs, &mut code, Composite::Acquire.combined());
                }
            }
            JavaOp::VolatileStore(loc) => {
                if lasr {
                    labeled(
                        &mut segs,
                        &mut code,
                        "vol.st",
                        Instr::Store {
                            loc,
                            ord: AccessOrd::Release,
                        },
                    );
                } else if cfg.arch == Arch::ArmV8 {
                    // Defensive ARM lowering: full barriers on both sides.
                    site(&mut segs, &mut code, Composite::Volatile.combined());
                    labeled(
                        &mut segs,
                        &mut code,
                        "vol.st",
                        Instr::Store {
                            loc,
                            ord: AccessOrd::Plain,
                        },
                    );
                    site(&mut segs, &mut code, Composite::Volatile.combined());
                } else {
                    // "volatile stores are preceded by Release and followed
                    // by Volatile" (§4.2).
                    site(&mut segs, &mut code, Composite::Release.combined());
                    labeled(
                        &mut segs,
                        &mut code,
                        "vol.st",
                        Instr::Store {
                            loc,
                            ord: AccessOrd::Plain,
                        },
                    );
                    site(&mut segs, &mut code, Composite::Volatile.combined());
                }
            }
            JavaOp::MonitorEnter(lock) => {
                code.push(Instr::Cas {
                    loc: Loc::SharedRw(0x10C0 + lock),
                    success_prob: cas_success,
                });
                if arm_lock_dmb {
                    site(&mut segs, &mut code, Composite::Volatile.combined());
                } else if cfg.arch == Arch::Power7 {
                    // C2's MemBarAcquireLock lowers to an lwsync on PPC64,
                    // requesting LoadStore+StoreStore ordering around the
                    // acquired lock word — a Release-class combination.
                    site(&mut segs, &mut code, Composite::Release.combined());
                }
            }
            JavaOp::MonitorExit(lock) => {
                if cfg.arch == Arch::ArmV8 {
                    // aarch64 C2 uses stlr for the unlock store…
                    code.push(Instr::Store {
                        loc: Loc::SharedRw(0x10C0 + lock),
                        ord: AccessOrd::Release,
                    });
                    // …but unpatched code still emits a trailing dmb.
                    if arm_lock_dmb {
                        site(&mut segs, &mut code, Composite::Volatile.combined());
                    }
                } else {
                    site(&mut segs, &mut code, Composite::Release.combined());
                    code.push(Instr::Store {
                        loc: Loc::SharedRw(0x10C0 + lock),
                        ord: AccessOrd::Plain,
                    });
                }
            }
            JavaOp::Cas(loc) => {
                code.push(Instr::Cas {
                    loc,
                    success_prob: 0.9,
                });
                // Unsafe CAS has volatile semantics: a full barrier request.
                if !lasr {
                    site(&mut segs, &mut code, Composite::Volatile.combined());
                }
            }
            JavaOp::Alloc(words) => {
                // TLAB bump: private stores, no barriers.
                code.push(Instr::Compute { cycles: 4 });
                for w in 0..words.min(8) {
                    code.push(Instr::Store {
                        loc: Loc::Private(0x71AB + u64::from(w)),
                        ord: AccessOrd::Plain,
                    });
                }
            }
            JavaOp::Fence(c) => {
                site(&mut segs, &mut code, c.combined());
            }
        }
    }
    flush(&mut code, &mut segs);
    segs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::Elemental;

    fn count_sites(segs: &[Segment<Combined>], pred: impl Fn(&Combined) -> bool) -> usize {
        segs.iter()
            .filter(|s| matches!(s, Segment::Site(c) if pred(c)))
            .count()
    }

    #[test]
    fn volatile_load_emits_volatile_then_acquire_in_barrier_mode() {
        let cfg = JitConfig::jdk8(Arch::Power7);
        let segs = lower_thread(&[JavaOp::VolatileLoad(Loc::SharedRw(1))], cfg);
        let sites: Vec<Combined> = segs
            .iter()
            .filter_map(|s| match s {
                Segment::Site(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(
            sites,
            vec![
                Composite::Volatile.combined(),
                Composite::Acquire.combined()
            ]
        );
    }

    #[test]
    fn power_volatile_store_uses_release_then_volatile() {
        let cfg = JitConfig::jdk8(Arch::Power7);
        let segs = lower_thread(&[JavaOp::VolatileStore(Loc::SharedRw(1))], cfg);
        let sites: Vec<Combined> = segs
            .iter()
            .filter_map(|s| match s {
                Segment::Site(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(
            sites,
            vec![
                Composite::Release.combined(),
                Composite::Volatile.combined()
            ]
        );
    }

    #[test]
    fn arm_volatile_store_is_defensive() {
        let cfg = JitConfig::jdk8(Arch::ArmV8);
        let segs = lower_thread(&[JavaOp::VolatileStore(Loc::SharedRw(1))], cfg);
        assert_eq!(
            count_sites(&segs, |c| *c == Composite::Volatile.combined()),
            2,
            "full barriers both sides"
        );
        assert_eq!(
            count_sites(&segs, |c| *c == Composite::Release.combined()),
            0
        );
    }

    #[test]
    fn jdk9_arm_volatiles_have_no_sites() {
        let cfg = JitConfig::jdk9(Arch::ArmV8);
        let segs = lower_thread(
            &[
                JavaOp::VolatileLoad(Loc::SharedRw(1)),
                JavaOp::VolatileStore(Loc::SharedRw(2)),
            ],
            cfg,
        );
        assert_eq!(count_sites(&segs, |_| true), 0);
        // The accesses became labeled acquire/release instructions instead.
        let has_acq = segs.iter().any(|s| {
            matches!(s, Segment::Labeled("vol.ld", is) if is.iter().any(|i| matches!(i, Instr::Load { ord: AccessOrd::Acquire, .. })))
        });
        let has_rel = segs.iter().any(|s| {
            matches!(s, Segment::Labeled("vol.st", is) if is.iter().any(|i| matches!(i, Instr::Store { ord: AccessOrd::Release, .. })))
        });
        assert!(has_acq && has_rel);
    }

    #[test]
    fn ref_store_emits_card_mark() {
        let cfg = JitConfig::jdk8(Arch::Power7);
        let segs = lower_thread(&[JavaOp::RefStore(Loc::SharedRw(3))], cfg);
        assert_eq!(
            count_sites(&segs, |c| *c == Combined::only(Elemental::StoreStore)),
            1
        );
    }

    #[test]
    fn locking_patch_removes_arm_monitor_dmbs() {
        let ops = [JavaOp::MonitorEnter(1), JavaOp::MonitorExit(1)];
        let unpatched = lower_thread(
            &ops,
            JitConfig {
                arch: Arch::ArmV8,
                volatile_mode: VolatileMode::LoadAcquireStoreRelease,
                locking_patch: false,
            },
        );
        let patched = lower_thread(
            &ops,
            JitConfig {
                arch: Arch::ArmV8,
                volatile_mode: VolatileMode::LoadAcquireStoreRelease,
                locking_patch: true,
            },
        );
        assert_eq!(count_sites(&unpatched, |_| true), 2);
        assert_eq!(count_sites(&patched, |_| true), 0);
    }

    #[test]
    fn power_monitor_exit_is_release_site() {
        let cfg = JitConfig::jdk8(Arch::Power7);
        let segs = lower_thread(&[JavaOp::MonitorExit(1)], cfg);
        assert_eq!(
            count_sites(&segs, |c| *c == Composite::Release.combined()),
            1
        );
    }

    #[test]
    fn work_ops_merge_into_code_segments() {
        let cfg = JitConfig::jdk8(Arch::Power7);
        let segs = lower_thread(
            &[
                JavaOp::Work(10),
                JavaOp::Work(20),
                JavaOp::FieldLoad(Loc::Private(1)),
            ],
            cfg,
        );
        assert_eq!(segs.len(), 1, "adjacent plain ops coalesce: {segs:?}");
    }
}
