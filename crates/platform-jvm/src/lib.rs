//! # wmm-jvm
//!
//! A Hotspot-like **platform model**: the `OpenJDK` memory-barrier machinery of
//! §4.2 of *Benchmarking Weak Memory Models*.
//!
//! Within `OpenJDK` the Java Memory Model is enforced by *elemental* memory
//! barriers — `LoadLoad`, `LoadStore`, `StoreLoad`, `StoreStore` — generated
//! by the JIT compiler, plus higher-level composites (`Volatile`, `Acquire`,
//! `Release`, `LoadFence`, `StoreFence`). The assembler then lowers each
//! (possibly combined) barrier request to the target's fence instructions:
//!
//! * **POWER**: `StoreLoad` becomes `sync` (hwsync); every other elemental
//!   becomes `lwsync`.
//! * **`ARMv8`, JDK8 behaviour** (`-XX:+UseBarriersForVolatile`): `LoadLoad`
//!   and `LoadStore` become `dmb ishld`, `StoreStore` becomes `dmb ishst`,
//!   `StoreLoad` becomes `dmb ish`.
//! * **`ARMv8`, JDK9 behaviour**: volatile accesses use load-acquire /
//!   store-release instructions (`ldar`/`stlr`) instead of barriers.
//!
//! The crate exposes:
//! * [`barrier`] — the elemental/composite vocabulary; the code-path type is
//!   [`barrier::Combined`], a set of elementals, because Hotspot emits one
//!   instruction per combined request and the paper notes that injecting
//!   into one elemental therefore hits every combination containing it;
//! * [`strategy`] — the lowering strategies above, plus the single-barrier
//!   modifications the paper evaluates (`StoreStore` → `dmb ish`,
//!   `StoreStore` → `sync`);
//! * [`jit`] — a JIT-like lowering from Java-level operations (volatile
//!   accesses, monitors, CAS, allocation with card marks) to an
//!   instruction-level [`wmmbench::Image`] with labelled barrier sites,
//!   including the `UseBarriersForVolatile` flag and the pending
//!   DMB-elimination locking patch the paper tests (§4.2.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod jit;
pub mod optsites;
pub mod strategy;

pub use barrier::{Combined, Composite, Elemental};
pub use jit::{JavaOp, JitConfig, VolatileMode};
pub use optsites::{JvmPath, OptPass};
pub use strategy::{arm_jdk8_barriers, null_barriers, power_jdk9, with_placement, JvmStrategy};
