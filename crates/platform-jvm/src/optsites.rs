//! Cost-function IR nodes at compiler-optimisation sites — the extension
//! proposed in the paper's conclusion: "explore the annotation of code paths
//! related to compiler optimisations … with the JVM JIT compiler this could
//! be accomplished by adding a dedicated cost function IR node which is
//! added to code paths where a given optimisation occurs or would occur.
//! These IR nodes could then be assembled with or without cost function
//! instructions."
//!
//! [`lower_with_optsites`] produces an image whose code paths are
//! [`JvmPath`]: either a regular combined-barrier site or a *virtual*
//! optimisation site that lowers to zero instructions — unless the
//! methodology injects a cost function there, which measures how sensitive
//! the benchmark is to the code the optimisation touches (i.e. the headroom
//! that optimisation class has).

use wmm_sim::isa::Instr;
use wmmbench::image::Segment;
use wmmbench::strategy::FencingStrategy;

use crate::barrier::Combined;
use crate::jit::{lower, JavaOp, JitConfig};

/// JIT optimisation passes whose (actual or potential) application sites
/// can be annotated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptPass {
    /// Escape analysis / scalar replacement: fires at allocation sites.
    EscapeAnalysis,
    /// Lock elision / coarsening: fires at monitor operations.
    LockElision,
    /// Redundant volatile-load elimination: fires at volatile loads.
    RedundantVolatileLoad,
}

impl OptPass {
    /// All annotated passes.
    pub const ALL: [OptPass; 3] = [
        OptPass::EscapeAnalysis,
        OptPass::LockElision,
        OptPass::RedundantVolatileLoad,
    ];

    /// Label for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OptPass::EscapeAnalysis => "escape-analysis",
            OptPass::LockElision => "lock-elision",
            OptPass::RedundantVolatileLoad => "redundant-volatile-load",
        }
    }

    /// Does this pass annotate the given Java operation?
    #[must_use]
    pub fn fires_at(self, op: &JavaOp) -> bool {
        match self {
            OptPass::EscapeAnalysis => matches!(op, JavaOp::Alloc(_)),
            OptPass::LockElision => {
                matches!(op, JavaOp::MonitorEnter(_) | JavaOp::MonitorExit(_))
            }
            OptPass::RedundantVolatileLoad => matches!(op, JavaOp::VolatileLoad(_)),
        }
    }
}

/// A code path in the optimisation-annotated IR: a barrier site or a
/// virtual optimisation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JvmPath {
    /// A combined memory-barrier site (as in the plain lowering).
    Barrier(Combined),
    /// A cost-function IR node for an optimisation pass.
    Opt(OptPass),
}

/// Wrap a barrier strategy so it also lowers the virtual optimisation
/// sites (to nothing — they exist only to be injected into).
pub struct OptAwareStrategy<'a, S: FencingStrategy<Combined>> {
    inner: &'a S,
}

impl<'a, S: FencingStrategy<Combined>> OptAwareStrategy<'a, S> {
    /// Wrap `inner`.
    pub fn new(inner: &'a S) -> Self {
        OptAwareStrategy { inner }
    }
}

impl<S: FencingStrategy<Combined>> FencingStrategy<JvmPath> for OptAwareStrategy<'_, S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn lower(&self, path: &JvmPath) -> Vec<Instr> {
        match path {
            JvmPath::Barrier(c) => self.inner.lower(c),
            // Virtual IR node: assembles to nothing without an injection.
            JvmPath::Opt(_) => vec![],
        }
    }
}

/// Lower Java operations with optimisation-site annotations: the regular
/// barrier lowering, plus an `Opt` site before every operation each pass
/// fires at.
#[must_use]
pub fn lower_with_optsites(threads: &[Vec<JavaOp>], cfg: &JitConfig) -> Vec<Vec<Segment<JvmPath>>> {
    threads
        .iter()
        .map(|ops| {
            let mut out: Vec<Segment<JvmPath>> = Vec::new();
            for op in ops {
                for pass in OptPass::ALL {
                    if pass.fires_at(op) {
                        out.push(Segment::Site(JvmPath::Opt(pass)));
                    }
                }
                // Reuse the plain lowering for the single op.
                for seg in lower(&[vec![*op]], cfg).remove(0) {
                    out.push(match seg {
                        Segment::Code(c) => Segment::Code(c),
                        Segment::Labeled(l, c) => Segment::Labeled(l, c),
                        Segment::Site(c) => Segment::Site(JvmPath::Barrier(c)),
                    });
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::arm_jdk8_barriers;
    use wmm_sim::arch::Arch;
    use wmm_sim::isa::Loc;

    #[test]
    fn opt_sites_are_emitted_where_passes_fire() {
        let cfg = JitConfig::jdk8(Arch::ArmV8);
        let ops = vec![vec![
            JavaOp::Alloc(4),
            JavaOp::MonitorEnter(1),
            JavaOp::Work(10),
            JavaOp::MonitorExit(1),
            JavaOp::VolatileLoad(Loc::SharedRw(1)),
            JavaOp::FieldLoad(Loc::Private(1)),
        ]];
        let segs = &lower_with_optsites(&ops, &cfg)[0];
        let count = |p: OptPass| {
            segs.iter()
                .filter(|s| matches!(s, Segment::Site(JvmPath::Opt(q)) if *q == p))
                .count()
        };
        assert_eq!(count(OptPass::EscapeAnalysis), 1);
        assert_eq!(count(OptPass::LockElision), 2, "enter and exit");
        assert_eq!(count(OptPass::RedundantVolatileLoad), 1);
    }

    #[test]
    fn opt_sites_assemble_to_nothing_by_default() {
        let base = arm_jdk8_barriers();
        let s = OptAwareStrategy::new(&base);
        for pass in OptPass::ALL {
            assert!(s.lower(&JvmPath::Opt(pass)).is_empty());
        }
        // Barrier sites still lower through the inner strategy.
        assert!(!s
            .lower(&JvmPath::Barrier(
                crate::barrier::Composite::Volatile.combined()
            ))
            .is_empty());
    }

    #[test]
    fn barrier_structure_is_preserved() {
        let cfg = JitConfig::jdk8(Arch::Power7);
        let ops = vec![vec![JavaOp::VolatileStore(Loc::SharedRw(2))]];
        let plain = lower(&ops, &cfg);
        let annotated = lower_with_optsites(&ops, &cfg);
        let plain_sites = plain[0]
            .iter()
            .filter(|s| matches!(s, Segment::Site(_)))
            .count();
        let barrier_sites = annotated[0]
            .iter()
            .filter(|s| matches!(s, Segment::Site(JvmPath::Barrier(_))))
            .count();
        assert_eq!(plain_sites, barrier_sites);
    }
}
