//! Fencing strategies: how combined barrier requests lower to instructions.

use wmm_analyze::{apply_to_streams, Instrument, StreamDep};
use wmm_sim::isa::{FenceKind, Instr};
use wmmbench::image::flatten_streams;
use wmmbench::strategy::FencingStrategy;

use crate::barrier::{Combined, Elemental};
use crate::jit::{lower, JavaOp, JitConfig};

/// A named lowering from combined barriers to fence instructions.
#[derive(Debug, Clone)]
pub struct JvmStrategy {
    name: String,
    lower_fn: LowerFn,
    /// Optional single-site override: `(site, replacement)`.
    override_at: Option<(Combined, Vec<Instr>)>,
}

#[derive(Debug, Clone, Copy)]
enum LowerFn {
    ArmBarriers,
    Power,
    Null,
}

fn lower_arm(c: Combined) -> Vec<Instr> {
    if c == Combined::EMPTY {
        return vec![];
    }
    // §4.2: LoadLoad/LoadStore -> dmb ishld, StoreStore -> dmb ishst,
    // StoreLoad -> dmb ish. A combination takes the weakest single dmb
    // covering every requested ordering.
    if c.needs_store_load() || (c.needs_load_ordering() && c.needs_store_ordering()) {
        vec![Instr::Fence(FenceKind::DmbIsh)]
    } else if c.needs_store_ordering() {
        vec![Instr::Fence(FenceKind::DmbIshSt)]
    } else {
        vec![Instr::Fence(FenceKind::DmbIshLd)]
    }
}

fn lower_power(c: Combined) -> Vec<Instr> {
    if c == Combined::EMPTY {
        return vec![];
    }
    // §4.2: "Underlyingly StoreLoad becomes a hwsync instruction, while all
    // other elemental barriers become lwsync instructions."
    if c.needs_store_load() {
        vec![Instr::Fence(FenceKind::HwSync)]
    } else {
        vec![Instr::Fence(FenceKind::LwSync)]
    }
}

impl JvmStrategy {
    /// Replace the lowering of exactly one site combination — the paper's
    /// single-barrier modifications ("we modified the generation of
    /// `StoreStore` from lwsync to sync").
    #[must_use]
    pub fn with_override(mut self, site: Combined, replacement: Vec<Instr>) -> Self {
        self.override_at = Some((site, replacement));
        self
    }

    /// Rename (for report labelling of modified strategies).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl FencingStrategy<Combined> for JvmStrategy {
    fn name(&self) -> &str {
        &self.name
    }

    fn lower(&self, path: &Combined) -> Vec<Instr> {
        if let Some((site, repl)) = &self.override_at {
            if site == path {
                return repl.clone();
            }
        }
        match self.lower_fn {
            LowerFn::ArmBarriers => lower_arm(*path),
            LowerFn::Power => lower_power(*path),
            LowerFn::Null => vec![],
        }
    }
}

/// The JDK8/`-XX:+UseBarriersForVolatile` `ARMv8` strategy (all `dmb`s) —
/// the paper's base case on ARM.
#[must_use]
pub fn arm_jdk8_barriers() -> JvmStrategy {
    JvmStrategy {
        name: "arm-jdk8-barriers".into(),
        lower_fn: LowerFn::ArmBarriers,
        override_at: None,
    }
}

/// The POWER strategy used by both JDK8 and the in-development JDK9.
#[must_use]
pub fn power_jdk9() -> JvmStrategy {
    JvmStrategy {
        name: "power-jdk9".into(),
        lower_fn: LowerFn::Power,
        override_at: None,
    }
}

/// The null strategy: every barrier site lowers to *nothing*, leaving the
/// bare access skeleton. This is what fence synthesis starts from — the
/// JIT's barrier requests are discarded and `wmm-analyze` re-derives a
/// placement from the critical cycles alone.
#[must_use]
pub fn null_barriers() -> JvmStrategy {
    JvmStrategy {
        name: "null-barriers".into(),
        lower_fn: LowerFn::Null,
        override_at: None,
    }
}

/// Lower `idiom` with every barrier site empty, then re-impose a
/// synthesized `placement`: the synthesized counterpart of flattening
/// under a hand strategy, returning the instrumented streams plus any
/// artificial dependencies the placement carries.
///
/// `cfg` must be a barriers-mode config (JDK8-style): the JDK9 ARM mode
/// bakes ordering into `ldar`/`stlr` accesses, so its lowering is never
/// bare and synthesis on top of it would be trivially satisfied.
///
/// # Panics
///
/// Panics if the placement addresses accesses that do not exist in the
/// bare lowering (see [`wmm_analyze::apply_to_streams`]).
#[must_use]
pub fn with_placement(
    idiom: &[Vec<JavaOp>],
    cfg: &JitConfig,
    placement: &[Instrument],
) -> (Vec<Vec<Instr>>, Vec<StreamDep>) {
    let bare = flatten_streams(&lower(idiom, cfg), &null_barriers());
    apply_to_streams(&bare, placement)
}

/// §4.2.1 experiment: ARM `StoreStore` generated as `dmb ish` instead of
/// `dmb ishst` (observed: a statistically significant 0.7% drop on spark).
#[must_use]
pub fn arm_storestore_as_full() -> JvmStrategy {
    arm_jdk8_barriers()
        .with_override(
            Combined::only(Elemental::StoreStore),
            vec![Instr::Fence(FenceKind::DmbIsh)],
        )
        .named("arm StoreStore=dmb ish")
}

/// §4.2.1 experiment: POWER `StoreStore` generated as `sync` instead of
/// `lwsync` (observed: a 12.5% drop on spark).
#[must_use]
pub fn power_storestore_as_sync() -> JvmStrategy {
    power_jdk9()
        .with_override(
            Combined::only(Elemental::StoreStore),
            vec![Instr::Fence(FenceKind::HwSync)],
        )
        .named("power StoreStore=sync")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::Composite;

    #[test]
    fn arm_elemental_mapping_matches_paper() {
        let s = arm_jdk8_barriers();
        assert_eq!(
            s.lower(&Combined::only(Elemental::LoadLoad)),
            vec![Instr::Fence(FenceKind::DmbIshLd)]
        );
        assert_eq!(
            s.lower(&Combined::only(Elemental::LoadStore)),
            vec![Instr::Fence(FenceKind::DmbIshLd)]
        );
        assert_eq!(
            s.lower(&Combined::only(Elemental::StoreStore)),
            vec![Instr::Fence(FenceKind::DmbIshSt)]
        );
        assert_eq!(
            s.lower(&Combined::only(Elemental::StoreLoad)),
            vec![Instr::Fence(FenceKind::DmbIsh)]
        );
    }

    #[test]
    fn arm_composites_take_weakest_covering_dmb() {
        let s = arm_jdk8_barriers();
        assert_eq!(
            s.lower(&Composite::Acquire.combined()),
            vec![Instr::Fence(FenceKind::DmbIshLd)]
        );
        // Release needs LoadStore (load-side) and StoreStore: full dmb.
        assert_eq!(
            s.lower(&Composite::Release.combined()),
            vec![Instr::Fence(FenceKind::DmbIsh)]
        );
        assert_eq!(
            s.lower(&Composite::Volatile.combined()),
            vec![Instr::Fence(FenceKind::DmbIsh)]
        );
    }

    #[test]
    fn power_mapping_matches_paper() {
        let s = power_jdk9();
        for e in [
            Elemental::LoadLoad,
            Elemental::LoadStore,
            Elemental::StoreStore,
        ] {
            assert_eq!(
                s.lower(&Combined::only(e)),
                vec![Instr::Fence(FenceKind::LwSync)],
                "{e:?}"
            );
        }
        assert_eq!(
            s.lower(&Combined::only(Elemental::StoreLoad)),
            vec![Instr::Fence(FenceKind::HwSync)]
        );
        assert_eq!(
            s.lower(&Composite::Volatile.combined()),
            vec![Instr::Fence(FenceKind::HwSync)]
        );
        assert_eq!(
            s.lower(&Composite::Release.combined()),
            vec![Instr::Fence(FenceKind::LwSync)]
        );
    }

    #[test]
    fn overrides_touch_only_their_site() {
        let s = power_storestore_as_sync();
        assert_eq!(
            s.lower(&Combined::only(Elemental::StoreStore)),
            vec![Instr::Fence(FenceKind::HwSync)]
        );
        // Release still lowers per the base strategy.
        assert_eq!(
            s.lower(&Composite::Release.combined()),
            vec![Instr::Fence(FenceKind::LwSync)]
        );
        assert_eq!(s.name(), "power StoreStore=sync");
    }

    #[test]
    fn empty_combination_lowers_to_nothing() {
        assert!(arm_jdk8_barriers().lower(&Combined::EMPTY).is_empty());
        assert!(power_jdk9().lower(&Combined::EMPTY).is_empty());
    }

    #[test]
    fn null_strategy_erases_every_site() {
        let s = null_barriers();
        for e in [
            Elemental::LoadLoad,
            Elemental::LoadStore,
            Elemental::StoreLoad,
            Elemental::StoreStore,
        ] {
            assert!(s.lower(&Combined::only(e)).is_empty(), "{e:?}");
        }
        assert!(s.lower(&Composite::Volatile.combined()).is_empty());
    }

    #[test]
    fn with_placement_reimposes_fences_on_the_bare_lowering() {
        use wmm_sim::arch::Arch;
        use wmm_sim::isa::Loc;

        let idiom = vec![
            vec![
                JavaOp::VolatileStore(Loc::SharedRw(1)),
                JavaOp::VolatileLoad(Loc::SharedRw(2)),
            ],
            vec![
                JavaOp::VolatileStore(Loc::SharedRw(2)),
                JavaOp::VolatileLoad(Loc::SharedRw(1)),
            ],
        ];
        let cfg = JitConfig::jdk8(Arch::ArmV8);

        // Bare lowering: no fences at all.
        let (bare, deps) = with_placement(&idiom, &cfg, &[]);
        assert!(deps.is_empty());
        assert!(bare.iter().flatten().all(|i| !matches!(i, Instr::Fence(_))));

        // A full fence between each thread's store and load comes back.
        let placement = [
            Instrument::Fence {
                thread: 0,
                slot: 1,
                kind: FenceKind::DmbIsh,
            },
            Instrument::Fence {
                thread: 1,
                slot: 1,
                kind: FenceKind::DmbIsh,
            },
        ];
        let (streams, _) = with_placement(&idiom, &cfg, &placement);
        for t in &streams {
            assert_eq!(
                t.iter()
                    .filter(|i| matches!(i, Instr::Fence(FenceKind::DmbIsh)))
                    .count(),
                1
            );
        }
    }
}
