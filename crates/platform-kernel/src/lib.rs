//! # wmm-kernel
//!
//! A Linux-kernel-like **platform model**: the memory-model macro machinery
//! of §4.3 of *Benchmarking Weak Memory Models*.
//!
//! The Linux kernel memory model is enforced by explicit barrier macros
//! (documented in `memory-barriers.txt`), implemented per architecture in
//! `include/asm/barriers.h`. This crate models:
//!
//! * [`macros`] — the 14 macros the paper investigates (`smp_mb`,
//!   `read_once`, `read_barrier_depends`, …) and their default `ARMv8`
//!   lowerings (only `smp_mb` and friends produce instructions; `read_once`,
//!   `write_once` and `read_barrier_depends` are compiler-only);
//! * [`rbd`] — the six `read_barrier_depends` fencing strategies of Fig. 10:
//!   `base case`, `ctrl`, `ctrl+isb`, `dmb ishld`, `dmb ish` and `la/sr`
//!   (which also annotates `READ_ONCE`/`WRITE_ONCE`), each "replicating a
//!   method for introducing ordering dependencies from the `ARMv8` manual";
//! * [`publish`] — the RCU-style publication idiom those strategies exist
//!   for, lowered under any strategy, plus the bridge mapping a
//!   `wmm-analyze` synthesized fence placement back onto the kernel's
//!   macro sites;
//! * [`services`] — kernel code paths (syscall entry, network TX/RX over
//!   loopback, RCU read sections, page allocation, scheduler wakeups) as
//!   segment generators with macro sites at realistic densities, from which
//!   the `wmm-workloads` crate composes whole benchmarks.
//!
//! As in the paper, the kernel "binary" is compiled once with identifiable
//! site markers and rewritten per test, keeping code size invariant — that
//! machinery is `wmmbench::image`, shared with the JVM platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod macros;
pub mod publish;
pub mod rbd;
pub mod services;

pub use macros::{default_arm_strategy, KMacro, KernelStrategy};
pub use publish::{bare_publish, publish_idiom, rbd_publish, strategy_from_placement};
pub use rbd::{rbd_strategy, RbdStrategy};
pub use services::Service;
