//! The kernel's memory-model macros and their default `ARMv8` lowerings.

use wmm_sim::isa::{FenceKind, Instr};
use wmmbench::strategy::FencingStrategy;

/// The 14 memory-model macros investigated in §4.3 (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KMacro {
    /// `smp_mb()` — full barrier between CPUs.
    SmpMb,
    /// `smp_rmb()` — read barrier.
    SmpRmb,
    /// `smp_wmb()` — write barrier.
    SmpWmb,
    /// `smp_mb__before_atomic()`.
    SmpMbBeforeAtomic,
    /// `smp_mb__after_atomic()`.
    SmpMbAfterAtomic,
    /// `smp_store_mb()` — store followed by a full barrier.
    SmpStoreMb,
    /// `smp_load_acquire()`.
    SmpLoadAcquire,
    /// `smp_store_release()`.
    SmpStoreRelease,
    /// `READ_ONCE()` — prevents duplicated/fused reads (compiler-only).
    ReadOnce,
    /// `WRITE_ONCE()` — prevents duplicated/fused writes (compiler-only).
    WriteOnce,
    /// `read_barrier_depends()` — orders dependent reads; a superset of the
    /// control dependencies `READ_ONCE_CTRL` would need (§4.3).
    ReadBarrierDepends,
    /// `mb()` — mandatory (device-visible) full barrier.
    Mb,
    /// `rmb()` — mandatory read barrier.
    Rmb,
    /// `wmb()` — mandatory write barrier.
    Wmb,
}

impl KMacro {
    /// All macros, in Fig. 7's display order.
    pub const ALL: [KMacro; 14] = [
        KMacro::SmpMb,
        KMacro::ReadOnce,
        KMacro::ReadBarrierDepends,
        KMacro::SmpRmb,
        KMacro::SmpWmb,
        KMacro::SmpMbBeforeAtomic,
        KMacro::SmpStoreMb,
        KMacro::SmpMbAfterAtomic,
        KMacro::WriteOnce,
        KMacro::SmpLoadAcquire,
        KMacro::SmpStoreRelease,
        KMacro::Rmb,
        KMacro::Mb,
        KMacro::Wmb,
    ];

    /// Macro name as written in kernel source.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KMacro::SmpMb => "smp_mb",
            KMacro::SmpRmb => "smp_rmb",
            KMacro::SmpWmb => "smp_wmb",
            KMacro::SmpMbBeforeAtomic => "smp_mb_before_atomic",
            KMacro::SmpMbAfterAtomic => "smp_mb_after_atomic",
            KMacro::SmpStoreMb => "smp_store_mb",
            KMacro::SmpLoadAcquire => "smp_load_acquire",
            KMacro::SmpStoreRelease => "smp_store_release",
            KMacro::ReadOnce => "read_once",
            KMacro::WriteOnce => "write_once",
            KMacro::ReadBarrierDepends => "read_barrier_depends",
            KMacro::Mb => "mb",
            KMacro::Rmb => "rmb",
            KMacro::Wmb => "wmb",
        }
    }
}

/// A kernel fencing strategy: the default per-macro lowering with an
/// arbitrary set of overrides (how the rbd strategies are built).
pub struct KernelStrategy {
    name: String,
    overrides: Vec<(KMacro, Vec<Instr>)>,
}

impl KernelStrategy {
    /// Add an override.
    #[must_use]
    pub fn with(mut self, m: KMacro, seq: Vec<Instr>) -> Self {
        self.overrides.push((m, seq));
        self
    }

    /// Rename.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Default lowering of a macro on `ARMv8` Linux 4.2 (§4.3):
    /// `smp_mb` is `dmb ish`; the read/write barriers use the `ishld`/`ishst`
    /// variants; acquire/release map to their nearest `dmb` flavour; the
    /// `_ONCE` macros and `read_barrier_depends` are compiler-only.
    #[must_use]
    pub fn default_lowering(m: KMacro) -> Vec<Instr> {
        match m {
            KMacro::SmpMb
            | KMacro::SmpMbBeforeAtomic
            | KMacro::SmpMbAfterAtomic
            | KMacro::SmpStoreMb
            | KMacro::Mb => vec![Instr::Fence(FenceKind::DmbIsh)],
            // smp_load_acquire/smp_store_release are ldar/stlr stand-ins:
            // ordering-equivalent dmb flavours (the timing model gives
            // acquire/release their own costs only when attached to an
            // access; a site is a pure instruction sequence).
            KMacro::SmpRmb | KMacro::Rmb | KMacro::SmpLoadAcquire => {
                vec![Instr::Fence(FenceKind::DmbIshLd)]
            }
            KMacro::SmpWmb | KMacro::Wmb | KMacro::SmpStoreRelease => {
                vec![Instr::Fence(FenceKind::DmbIshSt)]
            }
            KMacro::ReadOnce | KMacro::WriteOnce | KMacro::ReadBarrierDepends => {
                vec![Instr::Fence(FenceKind::Compiler)]
            }
        }
    }
}

impl FencingStrategy<KMacro> for KernelStrategy {
    fn name(&self) -> &str {
        &self.name
    }

    fn lower(&self, path: &KMacro) -> Vec<Instr> {
        for (m, seq) in &self.overrides {
            if m == path {
                return seq.clone();
            }
        }
        KernelStrategy::default_lowering(*path)
    }
}

/// The unmodified `ARMv8` kernel 4.2 strategy — the base case of §4.3 (after
/// nop padding, which `wmmbench::image` adds automatically).
#[must_use]
pub fn default_arm_strategy() -> KernelStrategy {
    KernelStrategy {
        name: "linux-4.2-arm64-default".into(),
        overrides: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_macros() {
        assert_eq!(KMacro::ALL.len(), 14);
        // No duplicates.
        let mut names: Vec<&str> = KMacro::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn default_smp_mb_is_dmb_ish() {
        let s = default_arm_strategy();
        assert_eq!(
            s.lower(&KMacro::SmpMb),
            vec![Instr::Fence(FenceKind::DmbIsh)]
        );
    }

    #[test]
    fn once_macros_are_compiler_only() {
        let s = default_arm_strategy();
        for m in [
            KMacro::ReadOnce,
            KMacro::WriteOnce,
            KMacro::ReadBarrierDepends,
        ] {
            assert_eq!(
                s.lower(&m),
                vec![Instr::Fence(FenceKind::Compiler)],
                "{m:?} must be free by default"
            );
        }
    }

    #[test]
    fn rw_barriers_use_dmb_variants() {
        let s = default_arm_strategy();
        assert_eq!(
            s.lower(&KMacro::SmpRmb),
            vec![Instr::Fence(FenceKind::DmbIshLd)]
        );
        assert_eq!(
            s.lower(&KMacro::SmpWmb),
            vec![Instr::Fence(FenceKind::DmbIshSt)]
        );
    }

    #[test]
    fn overrides_shadow_defaults() {
        let s = default_arm_strategy()
            .with(
                KMacro::ReadBarrierDepends,
                vec![Instr::Fence(FenceKind::DmbIshLd)],
            )
            .named("rbd=dmb ishld");
        assert_eq!(
            s.lower(&KMacro::ReadBarrierDepends),
            vec![Instr::Fence(FenceKind::DmbIshLd)]
        );
        assert_eq!(
            s.lower(&KMacro::SmpMb),
            vec![Instr::Fence(FenceKind::DmbIsh)],
            "other macros unchanged"
        );
        assert_eq!(s.name(), "rbd=dmb ishld");
    }
}
