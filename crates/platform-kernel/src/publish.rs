//! The RCU-style publication idiom `read_barrier_depends` exists for, and
//! the bridge between fence *synthesis* and kernel *strategies*.
//!
//! The idiom (§4.3.1): a writer initialises data then publishes a pointer;
//! a reader loads the pointer, invokes `read_barrier_depends`, and
//! dereferences. [`publish_idiom`] lowers it under any [`KernelStrategy`];
//! [`rbd_publish`] instantiates the six Fig. 10 strategies.
//!
//! [`strategy_from_placement`] closes the loop with `wmm-analyze`'s fence
//! synthesis: a placement computed on the bare idiom maps back onto the
//! kernel's macro sites (`smp_wmb` on the writer, `read_barrier_depends`
//! on the reader), so a synthesized solution can be re-lowered and priced
//! exactly like a hand-written strategy.

use wmm_analyze::{Instrument, StreamDep};
use wmm_litmus::ops::DepKind;
use wmm_sim::isa::{AccessOrd, FenceKind, Instr, Loc};
use wmmbench::strategy::FencingStrategy;

use crate::macros::{default_arm_strategy, KMacro, KernelStrategy};
use crate::rbd::{rbd_strategy, RbdStrategy};

/// Shared locations of the publication idiom.
const DATA: Loc = Loc::SharedRw(0xDA7A);
const PTR: Loc = Loc::SharedRw(0x97E);

fn store(loc: Loc) -> Instr {
    Instr::Store {
        loc,
        ord: AccessOrd::Plain,
    }
}

fn load(loc: Loc) -> Instr {
    Instr::Load {
        loc,
        ord: AccessOrd::Plain,
    }
}

/// Lower the publication idiom under a kernel strategy: writer thread
/// `WRITE_ONCE(data); smp_wmb(); WRITE_ONCE(ptr)`, reader thread
/// `READ_ONCE(ptr); read_barrier_depends(); READ_ONCE(data)`. `dep`, if
/// present, is the dependency the `read_barrier_depends` sequence carries
/// from the pointer load to the data load (the ctrl variants).
#[must_use]
pub fn publish_idiom(
    s: &KernelStrategy,
    dep: Option<DepKind>,
) -> (Vec<Vec<Instr>>, Vec<StreamDep>) {
    let mut writer = s.lower(&KMacro::WriteOnce);
    writer.push(store(DATA));
    writer.extend(s.lower(&KMacro::SmpWmb));
    writer.extend(s.lower(&KMacro::WriteOnce));
    writer.push(store(PTR));

    let mut reader = s.lower(&KMacro::ReadOnce);
    let ptr_load = reader.len();
    reader.push(load(PTR));
    reader.extend(s.lower(&KMacro::ReadBarrierDepends));
    reader.extend(s.lower(&KMacro::ReadOnce));
    let data_load = reader.len();
    reader.push(load(DATA));

    let deps = dep
        .map(|kind| StreamDep {
            thread: 1,
            from: ptr_load,
            to: data_load,
            kind,
        })
        .into_iter()
        .collect();
    (vec![writer, reader], deps)
}

/// The publication idiom lowered under a Fig. 10 `read_barrier_depends`
/// strategy.
#[must_use]
pub fn rbd_publish(which: RbdStrategy) -> (Vec<Vec<Instr>>, Vec<StreamDep>) {
    publish_idiom(&rbd_strategy(which), which.dep_kind())
}

/// The bare publication idiom: no barriers anywhere (what fence synthesis
/// starts from). Thread 0 is `W data; W ptr`, thread 1 is `R ptr; R data`.
#[must_use]
pub fn bare_publish() -> (Vec<Vec<Instr>>, Vec<StreamDep>) {
    (
        vec![vec![store(DATA), store(PTR)], vec![load(PTR), load(DATA)]],
        vec![],
    )
}

/// Map a fence placement synthesized on [`bare_publish`] back onto kernel
/// macro sites: writer fences between the two stores become the `smp_wmb`
/// lowering, reader fences between the two loads become the
/// `read_barrier_depends` lowering. A site the placement leaves bare is
/// lowered to a compiler barrier (the kernel default for
/// `read_barrier_depends`; for `smp_wmb` it *overrides* the default
/// `dmb ishst`, keeping the re-lowered program faithful to the placement).
///
/// Returns `None` if the placement contains anything that has no macro
/// site to live in: non-fence instruments (upgrades, dependencies) or
/// fences outside the two inter-access slots.
#[must_use]
pub fn strategy_from_placement(instruments: &[Instrument]) -> Option<KernelStrategy> {
    let mut wmb: Vec<Instr> = vec![];
    let mut rbd: Vec<Instr> = vec![];
    for ins in instruments {
        match *ins {
            Instrument::Fence {
                thread: 0,
                slot: 1,
                kind,
            } => wmb.push(Instr::Fence(kind)),
            Instrument::Fence {
                thread: 1,
                slot: 1,
                kind,
            } => rbd.push(Instr::Fence(kind)),
            _ => return None,
        }
    }
    if wmb.is_empty() {
        wmb.push(Instr::Fence(FenceKind::Compiler));
    }
    if rbd.is_empty() {
        rbd.push(Instr::Fence(FenceKind::Compiler));
    }
    Some(
        default_arm_strategy()
            .with(KMacro::SmpWmb, wmb)
            .with(KMacro::ReadBarrierDepends, rbd)
            .named("rbd=synth"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_case_publish_matches_hand_construction() {
        let (streams, deps) = rbd_publish(RbdStrategy::BaseCase);
        assert_eq!(streams.len(), 2);
        assert!(deps.is_empty());
        // Writer: compiler barrier, data store, dmb ishst (default
        // smp_wmb), compiler barrier, ptr store.
        assert!(streams[0].contains(&Instr::Fence(FenceKind::DmbIshSt)));
        assert!(
            streams[0]
                .iter()
                .filter(|i| matches!(i, Instr::Store { .. }))
                .count()
                == 2
        );
    }

    #[test]
    fn ctrl_variants_carry_the_dependency() {
        for which in [RbdStrategy::Ctrl, RbdStrategy::CtrlIsb] {
            let (streams, deps) = rbd_publish(which);
            assert_eq!(deps.len(), 1, "{}", which.label());
            let d = &deps[0];
            assert_eq!(d.thread, 1);
            assert!(matches!(streams[1][d.from], Instr::Load { loc, .. } if loc == PTR));
            assert!(matches!(streams[1][d.to], Instr::Load { loc, .. } if loc == DATA));
        }
    }

    #[test]
    fn bare_publish_has_no_fences() {
        let (streams, deps) = bare_publish();
        assert!(deps.is_empty());
        for t in &streams {
            assert!(t.iter().all(|i| !matches!(i, Instr::Fence(_))));
        }
    }

    #[test]
    fn placement_maps_onto_macro_sites() {
        let s = strategy_from_placement(&[
            Instrument::Fence {
                thread: 0,
                slot: 1,
                kind: FenceKind::DmbIshSt,
            },
            Instrument::Fence {
                thread: 1,
                slot: 1,
                kind: FenceKind::DmbIshLd,
            },
        ])
        .expect("both fences sit on macro sites");
        assert_eq!(
            s.lower(&KMacro::SmpWmb),
            vec![Instr::Fence(FenceKind::DmbIshSt)]
        );
        assert_eq!(
            s.lower(&KMacro::ReadBarrierDepends),
            vec![Instr::Fence(FenceKind::DmbIshLd)]
        );
    }

    #[test]
    fn empty_sites_relower_to_compiler_barriers() {
        let s = strategy_from_placement(&[Instrument::Fence {
            thread: 1,
            slot: 1,
            kind: FenceKind::DmbIsh,
        }])
        .expect("reader-only placement");
        assert_eq!(
            s.lower(&KMacro::SmpWmb),
            vec![Instr::Fence(FenceKind::Compiler)],
            "unplaced smp_wmb must not fall back to the strong default"
        );
    }

    #[test]
    fn off_site_instruments_have_no_kernel_home() {
        // A trailing fence and an acquire upgrade cannot be expressed as a
        // macro-site override.
        assert!(strategy_from_placement(&[Instrument::Fence {
            thread: 0,
            slot: 2,
            kind: FenceKind::DmbIsh,
        }])
        .is_none());
        assert!(strategy_from_placement(&[Instrument::Acquire { thread: 1, pos: 0 }]).is_none());
    }
}
