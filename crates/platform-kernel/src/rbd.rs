//! The six `read_barrier_depends` fencing strategies of Fig. 10.
//!
//! §4.3.1: "Each of these test cases replicates a method for introducing
//! ordering dependencies from the `ARMv8` manual [B2.7.4]":
//!
//! * **base case** — the default kernel: `read_barrier_depends` is a
//!   compiler barrier, padded with `nop`s;
//! * **ctrl** — a true control dependency: compare the last loaded value
//!   against a constant (42) and conditionally branch over an impotent
//!   instruction;
//! * **ctrl+isb** — the same, but the impotent instruction is an `isb`
//!   (orders dependent *loads* too, at pipeline-flush cost);
//! * **dmb ishld** / **dmb ish** — the barrier instruction itself;
//! * **la/sr** — `dmb ishld` for `read_barrier_depends`, plus `dmb ishld`
//!   added to `READ_ONCE` and `dmb ishst` to `WRITE_ONCE`, "with the
//!   intention of adding load-acquire/store-release semantics across all
//!   annotated reads and writes".

use wmm_litmus::ops::DepKind;
use wmm_sim::isa::{FenceKind, Instr, Mispredict};

use crate::macros::{default_arm_strategy, KMacro, KernelStrategy};

/// The test cases of Fig. 10, in the figure's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RbdStrategy {
    /// Default barriers with `nop` padding.
    BaseCase,
    /// Synthetic control dependency.
    Ctrl,
    /// Control dependency + `isb`.
    CtrlIsb,
    /// `dmb ishld`.
    DmbIshld,
    /// `dmb ish`.
    DmbIsh,
    /// Load-acquire/store-release across `READ_ONCE`/`WRITE_ONCE` too.
    LaSr,
}

impl RbdStrategy {
    /// All six, in Fig. 10 order.
    pub const ALL: [RbdStrategy; 6] = [
        RbdStrategy::BaseCase,
        RbdStrategy::Ctrl,
        RbdStrategy::CtrlIsb,
        RbdStrategy::DmbIshld,
        RbdStrategy::DmbIsh,
        RbdStrategy::LaSr,
    ];

    /// Label as printed in Fig. 10.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RbdStrategy::BaseCase => "base case",
            RbdStrategy::Ctrl => "ctrl",
            RbdStrategy::CtrlIsb => "ctrl+isb",
            RbdStrategy::DmbIshld => "dmb ishld",
            RbdStrategy::DmbIsh => "dmb ish",
            RbdStrategy::LaSr => "la/sr",
        }
    }

    /// The dependency this strategy's `read_barrier_depends` sequence
    /// establishes from the preceding load to later accesses, in litmus
    /// terms: the ctrl variants compare against the loaded value, so they
    /// carry a real control (or control+isb) dependency; the fence and
    /// base-case variants carry none — their ordering, if any, comes from
    /// the emitted fence instruction itself.
    #[must_use]
    pub fn dep_kind(self) -> Option<DepKind> {
        match self {
            RbdStrategy::Ctrl => Some(DepKind::Ctrl),
            RbdStrategy::CtrlIsb => Some(DepKind::CtrlIsb),
            _ => None,
        }
    }

    /// The instruction sequence this strategy uses for
    /// `read_barrier_depends` itself.
    #[must_use]
    pub fn rbd_sequence(self) -> Vec<Instr> {
        match self {
            RbdStrategy::BaseCase => vec![Instr::Fence(FenceKind::Compiler)],
            // cmp x_last, #42; b.ne +4; <impotent nop>
            RbdStrategy::Ctrl => vec![
                Instr::CmpImm,
                Instr::CondBranch(Mispredict::Workload),
                Instr::Nop,
            ],
            // cmp; b.ne; isb — the branch's misprediction cost is absorbed
            // by the flush the isb performs anyway, which is why the paper
            // measures ctrl+isb at the same ~24.5 ns in vitro and in vivo
            // ("the behaviour of isb is broadly stable").
            RbdStrategy::CtrlIsb => vec![
                Instr::CmpImm,
                Instr::CondBranch(Mispredict::Never),
                Instr::Fence(FenceKind::Isb),
            ],
            // la/sr uses dmb ishld for read_barrier_depends itself; its
            // extra _ONCE annotations are added in `rbd_strategy`.
            RbdStrategy::DmbIshld | RbdStrategy::LaSr => {
                vec![Instr::Fence(FenceKind::DmbIshLd)]
            }
            RbdStrategy::DmbIsh => vec![Instr::Fence(FenceKind::DmbIsh)],
        }
    }
}

/// Build the full kernel strategy for a Fig. 10 test case.
#[must_use]
pub fn rbd_strategy(which: RbdStrategy) -> KernelStrategy {
    let mut s = default_arm_strategy()
        .with(KMacro::ReadBarrierDepends, which.rbd_sequence())
        .named(format!("rbd={}", which.label()));
    if which == RbdStrategy::LaSr {
        s = s
            .with(KMacro::ReadOnce, vec![Instr::Fence(FenceKind::DmbIshLd)])
            .with(KMacro::WriteOnce, vec![Instr::Fence(FenceKind::DmbIshSt)]);
    }
    s
}

/// The largest footprint any strategy needs at a macro site, in words —
/// used for the shared envelope so all six test kernels have identical
/// code-section sizes.
#[must_use]
pub fn max_site_words() -> u64 {
    RbdStrategy::ALL
        .iter()
        .map(|s| wmm_sim::isa::seq_size(&s.rbd_sequence()))
        .max()
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmmbench::strategy::FencingStrategy;

    #[test]
    fn six_strategies_with_labels() {
        assert_eq!(RbdStrategy::ALL.len(), 6);
        assert_eq!(RbdStrategy::CtrlIsb.label(), "ctrl+isb");
        assert_eq!(RbdStrategy::LaSr.label(), "la/sr");
    }

    #[test]
    fn base_case_is_free() {
        let s = rbd_strategy(RbdStrategy::BaseCase);
        assert_eq!(
            s.lower(&KMacro::ReadBarrierDepends),
            vec![Instr::Fence(FenceKind::Compiler)]
        );
    }

    #[test]
    fn ctrl_uses_a_real_branch() {
        let seq = RbdStrategy::Ctrl.rbd_sequence();
        assert!(seq
            .iter()
            .any(|i| matches!(i, Instr::CondBranch(Mispredict::Workload))));
        assert!(!seq
            .iter()
            .any(|i| matches!(i, Instr::Fence(FenceKind::Isb))));
    }

    #[test]
    fn ctrl_isb_adds_the_flush() {
        let seq = RbdStrategy::CtrlIsb.rbd_sequence();
        assert!(seq
            .iter()
            .any(|i| matches!(i, Instr::Fence(FenceKind::Isb))));
    }

    #[test]
    fn lasr_annotates_once_macros_too() {
        let s = rbd_strategy(RbdStrategy::LaSr);
        assert_eq!(
            s.lower(&KMacro::ReadOnce),
            vec![Instr::Fence(FenceKind::DmbIshLd)]
        );
        assert_eq!(
            s.lower(&KMacro::WriteOnce),
            vec![Instr::Fence(FenceKind::DmbIshSt)]
        );
        // Non-LaSr strategies leave the _ONCE macros free.
        let d = rbd_strategy(RbdStrategy::DmbIshld);
        assert_eq!(
            d.lower(&KMacro::ReadOnce),
            vec![Instr::Fence(FenceKind::Compiler)]
        );
    }

    #[test]
    fn envelope_covers_all_variants() {
        // ctrl/ctrl+isb are the longest at 3 words.
        assert_eq!(max_site_words(), 3);
    }
}
