//! Kernel service code paths: segment generators with macro sites.
//!
//! Each service models one kernel subsystem's hot path as application-level
//! instruction segments plus memory-model macro sites at densities chosen to
//! reproduce the paper's rankings: `smp_mb`, `read_once` and
//! `read_barrier_depends` are the most frequently executed macros across the
//! benchmark set (Fig. 7), the network stack is saturated with them
//! (netperf's top sensitivity in Figs. 8 and 9), and the mandatory device
//! barriers (`mb`/`rmb`/`wmb`) are rare. The `wmm-workloads` crate composes
//! these services into whole benchmarks.

use wmm_sim::isa::{AccessOrd, Instr, Loc};
use wmm_sim::SplitMix64;
use wmmbench::image::Segment;

use crate::macros::KMacro;

/// A kernel subsystem hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// System-call entry/exit: fd-table lookups under RCU.
    Syscall,
    /// An RCU read-side critical section (route/dentry lookup).
    RcuRead,
    /// Network transmit over loopback: ring-buffer publish + doorbell.
    NetTx,
    /// Network receive: descriptor consume + socket wakeup.
    NetRx,
    /// Page allocation / memory management (ebizzy's stress target).
    PageAlloc,
    /// Scheduler wakeup (pipes, semaphores, condvars).
    SchedWakeup,
    /// VFS read path (page-cache hit).
    VfsRead,
    /// Device I/O with mandatory barriers (block layer).
    DeviceIo,
}

/// Shared kernel data-structure lines.
mod lines {
    pub const FDTABLE: u64 = 0xFD00;
    pub const ROUTE: u64 = 0x2070;
    pub const RING: u64 = 0x21A6;
    pub const SOCK: u64 = 0x50CC;
    pub const ZONE: u64 = 0x20AE;
    pub const RUNQ: u64 = 0x2109;
    pub const PAGECACHE: u64 = 0x9A6E;
}

impl Service {
    /// Append this service's hot path to `out`. `rng` varies line selection
    /// and path lengths so repeated invocations are not identical.
    // One arm per service; each arm is a barrier-usage vignette and reads
    // as a unit.
    #[allow(clippy::too_many_lines)]
    pub fn emit(&self, out: &mut Vec<Segment<KMacro>>, rng: &mut SplitMix64) {
        use KMacro::{
            Mb, ReadBarrierDepends, ReadOnce, Rmb, SmpLoadAcquire, SmpMb, SmpMbAfterAtomic,
            SmpMbBeforeAtomic, SmpRmb, SmpStoreMb, SmpStoreRelease, SmpWmb, Wmb, WriteOnce,
        };
        let code = |v: Vec<Instr>| Segment::Code(v);
        let site = |m: KMacro| Segment::Site(m);
        let ld = |l: u64| Instr::Load {
            loc: Loc::SharedRw(l),
            ord: AccessOrd::Plain,
        };
        let st = |l: u64| Instr::Store {
            loc: Loc::SharedRw(l),
            ord: AccessOrd::Plain,
        };
        let work = |c: u32| Instr::Compute { cycles: c };

        match self {
            Service::Syscall => {
                let fd = lines::FDTABLE + rng.next_below(16);
                out.push(code(vec![work(30)])); // entry, save regs
                out.push(site(ReadOnce)); // READ_ONCE(current->files)
                out.push(code(vec![ld(fd)]));
                out.push(site(ReadBarrierDepends)); // rcu_dereference(fdt)
                out.push(code(vec![ld(fd + 64)]));
                out.push(code(vec![work(40), ld(fd + 128)]));
                out.push(site(SmpMb)); // exit work / signal check
                out.push(code(vec![work(25)]));
            }
            Service::RcuRead => {
                let r = lines::ROUTE + rng.next_below(8);
                out.push(site(ReadOnce));
                out.push(code(vec![ld(r)]));
                out.push(site(ReadBarrierDepends)); // rcu_dereference chain
                out.push(code(vec![ld(r + 1), work(15)]));
                out.push(site(ReadBarrierDepends));
                out.push(code(vec![ld(r + 2)]));
            }
            Service::NetTx => {
                let ring_line = lines::RING + rng.next_below(4);
                out.push(code(vec![work(60)])); // skb build
                out.push(site(WriteOnce)); // descriptor fill
                out.push(code(vec![st(ring_line)]));
                out.push(site(SmpWmb)); // publish before index update
                out.push(site(WriteOnce));
                out.push(code(vec![st(ring_line + 1)]));
                out.push(site(SmpMb)); // doorbell / peer wakeup
                out.push(code(vec![work(20)]));
            }
            Service::NetRx => {
                let ring_line = lines::RING + rng.next_below(4);
                out.push(site(ReadOnce)); // index poll
                out.push(code(vec![ld(ring_line + 1)]));
                out.push(site(SmpRmb)); // index before descriptor
                out.push(site(ReadBarrierDepends)); // descriptor deref
                out.push(code(vec![ld(ring_line), work(50)]));
                out.push(site(ReadBarrierDepends)); // skb data deref
                out.push(code(vec![ld(lines::SOCK)]));
                out.push(site(SmpMb)); // socket state / wakeup
                out.push(code(vec![work(30)]));
            }
            Service::PageAlloc => {
                let zone = lines::ZONE + rng.next_below(4);
                out.push(site(SmpMbBeforeAtomic));
                out.push(code(vec![Instr::Cas {
                    loc: Loc::SharedRw(zone),
                    success_prob: 0.9,
                }]));
                out.push(site(SmpMbAfterAtomic));
                out.push(site(WriteOnce)); // page-table update
                out.push(code(vec![st(zone + 8), work(45)]));
                out.push(site(SmpStoreRelease)); // page ready
                out.push(code(vec![st(zone + 9)]));
                out.push(site(SmpMb)); // zone watermark / kswapd wakeup
                out.push(code(vec![work(10)]));
            }
            Service::SchedWakeup => {
                let rq = lines::RUNQ + rng.next_below(4);
                out.push(site(SmpMb)); // wake-queue ordering
                out.push(site(ReadOnce)); // task state
                out.push(code(vec![ld(rq)]));
                out.push(site(SmpLoadAcquire));
                out.push(code(vec![
                    Instr::Cas {
                        loc: Loc::SharedRw(rq + 1),
                        success_prob: 0.92,
                    },
                    work(35),
                ]));
                out.push(site(SmpMb)); // ttwu pairing
                out.push(site(SmpStoreRelease));
                out.push(code(vec![st(rq + 2)]));
            }
            Service::VfsRead => {
                let pc = lines::PAGECACHE + rng.next_below(32);
                out.push(site(ReadOnce));
                out.push(code(vec![ld(pc)]));
                out.push(site(ReadBarrierDepends)); // radix-tree deref
                out.push(code(vec![ld(pc + 1), work(55)]));
                out.push(site(SmpLoadAcquire)); // PageUptodate
                out.push(code(vec![work(25)]));
            }
            Service::DeviceIo => {
                out.push(code(vec![work(120)]));
                out.push(site(Wmb)); // descriptor to device
                out.push(code(vec![st(lines::RING + 16)]));
                out.push(site(Mb)); // doorbell
                out.push(code(vec![work(80)]));
                out.push(site(Rmb)); // completion read
                out.push(code(vec![ld(lines::RING + 17)]));
                out.push(site(SmpStoreMb));
                out.push(code(vec![st(lines::RING + 18)]));
            }
        }
    }

    /// Count macro sites this service emits per invocation (deterministic).
    #[must_use]
    pub fn site_count(&self) -> usize {
        let mut out = vec![];
        let mut rng = SplitMix64::new(0);
        self.emit(&mut out, &mut rng);
        out.iter().filter(|s| matches!(s, Segment::Site(_))).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites_of(s: Service) -> Vec<KMacro> {
        let mut out = vec![];
        let mut rng = SplitMix64::new(1);
        s.emit(&mut out, &mut rng);
        out.iter()
            .filter_map(|seg| match seg {
                Segment::Site(m) => Some(*m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn syscall_path_uses_rcu_macros() {
        let sites = sites_of(Service::Syscall);
        assert!(sites.contains(&KMacro::ReadOnce));
        assert!(sites.contains(&KMacro::ReadBarrierDepends));
        assert!(sites.contains(&KMacro::SmpMb));
    }

    #[test]
    fn net_paths_are_macro_dense() {
        // The network stack must be the most macro-dense service pair —
        // netperf tops the sensitivity rankings (Figs. 8, 9).
        let tx = Service::NetTx.site_count();
        let rx = Service::NetRx.site_count();
        assert!(tx + rx >= 9, "tx={tx} rx={rx}");
        assert!(
            sites_of(Service::NetRx)
                .iter()
                .filter(|m| **m == KMacro::ReadBarrierDepends)
                .count()
                >= 2
        );
    }

    #[test]
    fn device_io_is_the_only_mandatory_barrier_user() {
        for s in [
            Service::Syscall,
            Service::RcuRead,
            Service::NetTx,
            Service::NetRx,
            Service::PageAlloc,
            Service::SchedWakeup,
            Service::VfsRead,
        ] {
            let sites = sites_of(s);
            assert!(
                !sites
                    .iter()
                    .any(|m| matches!(m, KMacro::Mb | KMacro::Rmb | KMacro::Wmb)),
                "{s:?} should not use mandatory barriers"
            );
        }
        let dev = sites_of(Service::DeviceIo);
        assert!(dev.contains(&KMacro::Mb));
        assert!(dev.contains(&KMacro::Rmb));
        assert!(dev.contains(&KMacro::Wmb));
    }

    #[test]
    fn emission_is_seed_deterministic() {
        let mut a = vec![];
        let mut b = vec![];
        Service::NetTx.emit(&mut a, &mut SplitMix64::new(5));
        Service::NetTx.emit(&mut b, &mut SplitMix64::new(5));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn all_fourteen_macros_are_reachable() {
        let mut seen = std::collections::HashSet::new();
        for s in [
            Service::Syscall,
            Service::RcuRead,
            Service::NetTx,
            Service::NetRx,
            Service::PageAlloc,
            Service::SchedWakeup,
            Service::VfsRead,
            Service::DeviceIo,
        ] {
            seen.extend(sites_of(s));
        }
        for m in KMacro::ALL {
            assert!(seen.contains(&m), "{m:?} unused by any service");
        }
    }
}
