//! Architecture specifications.
//!
//! Two concrete machines are modelled, matching §4.1 of the paper:
//!
//! * [`armv8_xgene1`] — an Applied Micro X-Gene 1: 8 cores at 2.4 GHz,
//!   out-of-order, with `dmb ish`/`ishld`/`ishst`, `isb` and
//!   load-acquire/store-release instructions.
//! * [`power7`] — a 12-core POWER7 at 3.7 GHz with `sync`/`lwsync` and
//!   4-way simultaneous multithreading (the SMT is what the paper blames for
//!   xalan's instability on POWER).
//!
//! All timing knobs live in [`ArchSpec`] so that calibration tests can assert
//! the micro-measured fence costs land near the paper's numbers
//! (`lwsync` ≈ 6.1 ns, `sync` ≈ 18.9 ns, …) and ablation benches can vary
//! individual parameters.

/// Which of the two modelled architectures a spec describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// ARMv8-A (X-Gene 1 class).
    ArmV8,
    /// POWER7 class.
    Power7,
}

impl Arch {
    /// Short lower-case label used in figures ("arm" / "power").
    pub fn label(self) -> &'static str {
        match self {
            Arch::ArmV8 => "arm",
            Arch::Power7 => "power",
        }
    }
}

/// Full parameter set of a simulated machine.
///
/// Cycle counts are `f64` so that sub-cycle amortised costs (dual-issued ALU
/// ops, pipelined L1 hits) can be expressed directly.
#[derive(Debug, Clone)]
pub struct ArchSpec {
    /// Architecture family.
    pub arch: Arch,
    /// Human-readable model name.
    pub name: &'static str,
    /// Number of hardware cores the machine exposes.
    pub cores: usize,
    /// Core clock in GHz; converts cycles to nanoseconds.
    pub freq_ghz: f64,
    /// Degree of simultaneous multithreading. SMT > 1 adds scheduling jitter
    /// (POWER7's xalan instability in Fig. 5).
    pub smt: u32,

    // --- pipeline ---
    /// Sustained issue width for simple ALU ops (cycles are divided by this).
    pub issue_width: f64,
    /// Maximum out-of-order overlap credit, in cycles, that can hide latency.
    pub ooo_window: f64,
    /// Fraction of a long-latency event that overlap may hide at most.
    pub ooo_hide_frac: f64,
    /// Credit gained per executed instruction (cycles).
    pub ooo_gain: f64,
    /// Branch mispredict penalty, cycles.
    pub mispredict_penalty: f64,

    // --- memory hierarchy ---
    /// L1 hit latency (pipelined, amortised), cycles.
    pub l1_hit: f64,
    /// Shared last-level cache hit latency, cycles.
    pub llc_hit: f64,
    /// DRAM access latency, cycles.
    pub dram: f64,
    /// Dirty-line transfer between cores, cycles.
    pub coherence_transfer: f64,
    /// Cost for a store to invalidate remote copies when it drains, cycles.
    pub invalidate: f64,

    // --- store buffer ---
    /// Store buffer capacity, entries.
    pub sb_capacity: usize,
    /// Drain cycles for a store whose line is already exclusively owned.
    pub sb_drain_local: f64,
    /// Drain cycles for a store that must fetch/invalidate the line.
    pub sb_drain_remote: f64,

    // --- fences ---
    /// Serialisation cost between back-to-back barrier instructions: a tight
    /// loop of fences cannot retire one more often than this many cycles.
    /// This is why microbenchmarks cannot tell `dmb ish` variants apart.
    pub fence_serial: f64,
    /// Base (empty-machine) cost of a full fence (`dmb ish` / `sync`).
    pub fence_full_base: f64,
    /// Base cost of a store-store fence (`dmb ishst` / part of `lwsync`).
    pub fence_st_base: f64,
    /// Base cost of a load fence (`dmb ishld`).
    pub fence_ld_base: f64,
    /// Penalty scale for a load fence when the load queue is busy, cycles.
    pub fence_ld_queue_penalty: f64,
    /// `isb` pipeline-flush cost, cycles.
    pub isb_flush: f64,
    /// Instructions dispatched serially in the shadow of a retired fence.
    pub fence_shadow_instrs: f64,
    /// Extra cycles per instruction dispatched in the fence shadow.
    pub fence_shadow_cost: f64,
    /// Extra latency of a load-acquire over a plain load, cycles.
    pub acquire_extra: f64,
    /// Extra latency of a store-release over a plain store, cycles; also
    /// waits on a fraction of pending drains.
    pub release_extra: f64,
    /// Fraction of the pending store-buffer drain a store-release waits for.
    pub release_drain_frac: f64,
    /// Fraction of the pending drain a store-store fence waits for.
    pub st_fence_drain_frac: f64,
    /// Fraction of the pending drain a *full* fence exposes: miss-handling
    /// parallelism lets part of the residual drain overlap with the fence's
    /// own serialisation. POWER's `sync` waits for a global acknowledgement
    /// and exposes more of it than ARM's `dmb ish`.
    pub full_fence_drain_frac: f64,
    /// Atomic (ll/sc or larx/stcx) base cost, cycles.
    pub cas_base: f64,

    // --- cost-function (spin loop) timing, Figs. 2-4 ---
    /// Cycles per loop iteration once the loop dominates (linear region).
    pub costfn_cycles_per_iter: f64,
    /// Number of iterations the out-of-order engine can overlap with
    /// surrounding code (sub-linear region of Fig. 4).
    pub costfn_overlap_iters: f64,
    /// Effective cycles per iteration inside the overlapped region.
    pub costfn_overlap_cost: f64,
    /// Fixed loop set-up cost (`mov` of N, first branch), cycles.
    pub costfn_setup: f64,
    /// Extra cost of the stack spill/reload pair (Fig. 2 lines 1/5), cycles.
    pub costfn_spill: f64,
}

impl ArchSpec {
    /// Convert cycles to nanoseconds on this machine.
    pub fn ns(&self, cycles: f64) -> f64 {
        cycles / self.freq_ghz
    }

    /// Convert nanoseconds to cycles on this machine.
    pub fn cycles(&self, ns: f64) -> f64 {
        ns * self.freq_ghz
    }

    /// Closed-form cycle cost of a cost-function loop of `iters` iterations
    /// (the native timing of [`crate::isa::Instr::CostLoop`]).
    ///
    /// Matches Fig. 4: flat/sub-linear while the out-of-order engine can
    /// overlap the short loop with surrounding code, then linear in N.
    pub fn costfn_cycles(&self, iters: u64, stack_spill: bool) -> f64 {
        let n = iters as f64;
        let overlapped = n.min(self.costfn_overlap_iters);
        let exposed = (n - self.costfn_overlap_iters).max(0.0);
        let spill = if stack_spill { self.costfn_spill } else { 0.0 };
        self.costfn_setup
            + spill
            + overlapped * self.costfn_overlap_cost
            + exposed * self.costfn_cycles_per_iter
    }
}

/// The ARMv8 machine of §4.1: X-Gene 1, 8 cores @ 2.4 GHz, 16 GiB RAM.
pub fn armv8_xgene1() -> ArchSpec {
    ArchSpec {
        arch: Arch::ArmV8,
        name: "X-Gene 1 (ARMv8, 8 cores @ 2.4 GHz)",
        cores: 8,
        freq_ghz: 2.4,
        smt: 1,

        issue_width: 2.0,
        ooo_window: 48.0,
        ooo_hide_frac: 0.6,
        ooo_gain: 0.5,
        mispredict_penalty: 38.0,

        l1_hit: 2.0,
        llc_hit: 28.0,
        dram: 220.0,
        coherence_transfer: 55.0,
        invalidate: 10.0,

        sb_capacity: 16,
        sb_drain_local: 0.5,
        sb_drain_remote: 6.0,

        // A tight all-fence loop retires one dmb per ~24 cycles (10 ns)
        // regardless of the ish/ishld/ishst variant — matching the paper's
        // failure to distinguish them by microbenchmarking.
        fence_serial: 24.0,
        fence_full_base: 7.0,
        fence_st_base: 5.0,
        fence_ld_base: 1.0,
        fence_ld_queue_penalty: 24.0,
        isb_flush: 48.0,
        fence_shadow_instrs: 4.0,
        fence_shadow_cost: 2.0,
        acquire_extra: 5.0,
        release_extra: 14.0,
        release_drain_frac: 1.3,
        st_fence_drain_frac: 0.3,
        full_fence_drain_frac: 0.6,
        cas_base: 14.0,

        costfn_cycles_per_iter: 1.0,
        costfn_overlap_iters: 8.0,
        costfn_overlap_cost: 0.25,
        costfn_setup: 2.0,
        costfn_spill: 4.0,
    }
}

/// The POWER7 machine of §4.1: 12 cores @ 3.7 GHz, 128 GiB RAM, 4-way SMT.
pub fn power7() -> ArchSpec {
    ArchSpec {
        arch: Arch::Power7,
        name: "POWER7 (12 cores @ 3.7 GHz)",
        cores: 12,
        freq_ghz: 3.7,
        smt: 4,

        issue_width: 2.5,
        ooo_window: 56.0,
        ooo_hide_frac: 0.5,
        ooo_gain: 0.5,
        mispredict_penalty: 42.0,

        l1_hit: 2.0,
        llc_hit: 26.0,
        dram: 280.0,
        coherence_transfer: 70.0,
        invalidate: 12.0,

        sb_capacity: 24,
        sb_drain_local: 0.7,
        sb_drain_remote: 10.0,

        // Microbenchmarked in the paper: lwsync 6.1 ns, sync 18.9 ns.
        // 6.1 ns * 3.7 GHz = 22.6 cycles; 18.9 ns * 3.7 GHz = 69.9 cycles.
        fence_serial: 22.6,
        fence_full_base: 69.9,
        fence_st_base: 22.6,
        fence_ld_base: 22.6,
        fence_ld_queue_penalty: 18.0,
        isb_flush: 60.0, // isync-class; not exercised by the paper's POWER runs
        fence_shadow_instrs: 4.0,
        fence_shadow_cost: 1.5,
        acquire_extra: 8.0,
        release_extra: 12.0,
        release_drain_frac: 0.4,
        st_fence_drain_frac: 0.25,
        full_fence_drain_frac: 1.4,
        cas_base: 18.0,

        costfn_cycles_per_iter: 1.0,
        costfn_overlap_iters: 8.0,
        costfn_overlap_cost: 0.3,
        costfn_setup: 2.0,
        costfn_spill: 4.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion_roundtrip() {
        let a = armv8_xgene1();
        let ns = a.ns(24.0);
        assert!((a.cycles(ns) - 24.0).abs() < 1e-12);
        assert!((ns - 10.0).abs() < 1e-9, "24 cycles @2.4GHz = 10 ns");
    }

    #[test]
    fn costfn_linear_for_large_n() {
        let a = armv8_xgene1();
        let t1 = a.costfn_cycles(1 << 10, true);
        let t2 = a.costfn_cycles(1 << 11, true);
        // Doubling N roughly doubles time in the linear region.
        let ratio = t2 / t1;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn costfn_sublinear_for_small_n() {
        let a = armv8_xgene1();
        let t1 = a.costfn_cycles(1, true);
        let t4 = a.costfn_cycles(4, true);
        // Far less than 4x growth while overlapped.
        assert!(t4 / t1 < 2.0, "t1={t1} t4={t4}");
    }

    #[test]
    fn nostack_variant_is_cheaper() {
        let a = armv8_xgene1();
        for n in [1u64, 16, 256, 4096] {
            assert!(a.costfn_cycles(n, false) < a.costfn_cycles(n, true));
        }
    }

    #[test]
    fn costfn_monotonic_in_n() {
        let p = power7();
        let mut prev = 0.0;
        for e in 0..14 {
            let t = p.costfn_cycles(1 << e, true);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn power_fence_bases_match_paper_micro() {
        let p = power7();
        // lwsync ~6.1 ns, sync ~18.9 ns (§4.2.1).
        assert!((p.ns(p.fence_serial) - 6.1).abs() < 0.05);
        assert!((p.ns(p.fence_full_base) - 18.9).abs() < 0.05);
    }

    #[test]
    fn specs_describe_the_papers_machines() {
        let a = armv8_xgene1();
        assert_eq!(a.cores, 8);
        assert_eq!(a.freq_ghz, 2.4);
        assert_eq!(a.arch.label(), "arm");
        let p = power7();
        assert_eq!(p.cores, 12);
        assert_eq!(p.freq_ghz, 3.7);
        assert_eq!(p.smt, 4);
        assert_eq!(p.arch.label(), "power");
    }
}
