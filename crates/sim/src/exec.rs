//! Per-core execution state and instruction timing semantics.
//!
//! Each core advances a local clock (in cycles). Cheap instructions add
//! width-amortised time and *earn* out-of-order overlap credit; expensive
//! events (cache misses, fences, mispredicts) *spend* credit, which hides a
//! bounded fraction of their latency. Fences additionally consult the store
//! buffer and the workload context, which is where every context-dependent
//! cost in the paper comes from:
//!
//! * `dmb ish` / `sync`: wait for the store buffer to drain, pay the full
//!   base cost, and kill overlap credit.
//! * `dmb ishst` / `lwsync`: pay a partial drain wait (the FIFO buffer
//!   already orders stores, so there is little left to wait for).
//! * `dmb ishld`: pay in proportion to outstanding loads — heavy in
//!   load-dense kernel paths (lmbench), nearly free elsewhere. This is the
//!   paper's "complex behaviour, and not simply mapping to dmb ish".
//! * `isb`: flush the pipeline — a large, *context-independent* cost, which
//!   is why the paper finds `ctrl+isb` stable across micro and macro runs.
//! * back-to-back fences serialise at `fence_serial` cycles, which is why a
//!   fence-timing microbenchmark cannot tell the `dmb` variants apart.

use crate::arch::ArchSpec;
use crate::isa::{AccessOrd, FenceKind, Instr, Loc, Mispredict};
use crate::machine::WorkloadCtx;
use crate::mem::{line_key, AccessOutcome, MemSys};
use crate::probe::{NullProbe, Probe};
use crate::rng::SplitMix64;
use crate::sbuf::StoreBuffer;
use crate::stats::Counters;

/// Mutable state of one simulated core.
#[derive(Debug)]
pub struct CoreState {
    /// Core index within the machine.
    pub id: usize,
    /// Local clock, cycles.
    pub clock: f64,
    /// Store buffer.
    pub sbuf: StoreBuffer,
    /// Out-of-order overlap credit, cycles.
    pub credit: f64,
    /// Completion time of the most recent long-latency load (the load-queue
    /// pressure a `dmb ishld` observes).
    pub load_outstanding_until: f64,
    /// Time the last barrier instruction retired (fence serialisation).
    pub last_fence_retired: f64,
    /// Instructions still to issue through the post-fence frontend refill
    /// (dispatch is serialised in the shadow of a barrier).
    pub fence_shadow: f64,
    /// Index of the next instruction to execute.
    pub pc: usize,
    /// Precomputed `1.0 / spec.issue_width` — charged on every cheap
    /// instruction, and an `fdiv` per step is measurable in nop-dense
    /// streams. Halving and whole multiples of it are exact, so every cost
    /// derived from it is bit-identical to dividing in place.
    inv_issue: f64,
    /// Precomputed `spec.l1_hit / spec.issue_width` (the [`Instr::StackPop`]
    /// cost), stored as the divided value so it is bit-identical too.
    pop_cost: f64,
}

impl CoreState {
    /// A fresh core.
    pub fn new(id: usize, spec: &ArchSpec) -> Self {
        CoreState {
            id,
            clock: 0.0,
            sbuf: StoreBuffer::new(spec.sb_capacity),
            credit: 0.0,
            load_outstanding_until: 0.0,
            last_fence_retired: f64::NEG_INFINITY,
            fence_shadow: 0.0,
            pc: 0,
            inv_issue: 1.0 / spec.issue_width,
            pop_cost: spec.l1_hit / spec.issue_width,
        }
    }

    /// Reset to exactly the state [`CoreState::new`] produces, reusing the
    /// store-buffer allocation. The spec is re-applied in full, so a scratch
    /// core can move between machines (e.g. ARM and POWER jobs in one batch).
    pub fn reset(&mut self, id: usize, spec: &ArchSpec) {
        self.id = id;
        self.clock = 0.0;
        self.sbuf.reset(spec.sb_capacity);
        self.credit = 0.0;
        self.load_outstanding_until = 0.0;
        self.last_fence_retired = f64::NEG_INFINITY;
        self.fence_shadow = 0.0;
        self.pc = 0;
        self.inv_issue = 1.0 / spec.issue_width;
        self.pop_cost = spec.l1_hit / spec.issue_width;
    }

    fn earn(&mut self, spec: &ArchSpec, amount: f64) {
        self.credit = (self.credit + amount).min(spec.ooo_window);
    }

    /// Post-fence frontend refill: cheap instructions dispatched in the
    /// shadow of a barrier are serialised, paying extra cycles. This is what
    /// makes even `nop` padding at barrier sites measurably expensive
    /// (§4.2.1's 1.9% mean for nop injection).
    fn shadow_tax(&mut self, spec: &ArchSpec) {
        if self.fence_shadow > 0.0 {
            self.clock += spec.fence_shadow_cost;
            self.fence_shadow -= 1.0;
        }
    }

    /// Spend overlap credit against a latency, returning the exposed cost.
    fn hide(&mut self, spec: &ArchSpec, cost: f64) -> f64 {
        let hideable = cost * spec.ooo_hide_frac;
        let hidden = hideable.min(self.credit);
        self.credit -= hidden;
        cost - hidden
    }

    /// Execute one instruction; advances `self.clock` and updates counters.
    pub fn step(
        &mut self,
        instr: &Instr,
        spec: &ArchSpec,
        ctx: &WorkloadCtx,
        mem: &mut MemSys,
        rng: &mut SplitMix64,
        counters: &mut Counters,
    ) {
        self.step_probed(instr, spec, ctx, mem, rng, counters, &mut NullProbe);
    }

    /// [`CoreState::step`] with an observation [`Probe`]. The probe only
    /// receives values the timing model already computed — no arithmetic is
    /// added or reordered — so the resulting state and counters are
    /// bit-identical to an unprobed step.
    /// The probe parameter is generic so statically-known probes
    /// monomorphize: with [`NullProbe`] every probe call compiles away
    /// entirely, which is what keeps the unprobed hot path free of virtual
    /// dispatch per instruction. `?Sized` keeps `&mut dyn Probe` callers
    /// working unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn step_probed<P: Probe + ?Sized>(
        &mut self,
        instr: &Instr,
        spec: &ArchSpec,
        ctx: &WorkloadCtx,
        mem: &mut MemSys,
        rng: &mut SplitMix64,
        counters: &mut Counters,
        probe: &mut P,
    ) {
        match *instr {
            Instr::Nop => {
                // Nops still occupy issue slots.
                self.shadow_tax(spec);
                self.clock += self.inv_issue * 0.5;
            }
            Instr::MovImm | Instr::Alu | Instr::CmpImm => {
                self.shadow_tax(spec);
                self.clock += self.inv_issue;
                self.earn(spec, spec.ooo_gain);
            }
            Instr::CondBranch(model) => {
                self.shadow_tax(spec);
                self.clock += self.inv_issue;
                let p = match model {
                    Mispredict::Never => 0.0,
                    Mispredict::Rate(r) => r,
                    Mispredict::Workload => ctx.bp_pressure,
                };
                if p > 0.0 && rng.chance(p) {
                    counters.mispredicts += 1;
                    let cost = self.hide(spec, spec.mispredict_penalty);
                    self.clock += cost;
                    self.credit = 0.0; // wrong-path work is discarded
                } else {
                    self.earn(spec, spec.ooo_gain);
                }
            }
            Instr::StackPush => {
                // A store to the core's own stack line: buffered, cheap.
                let key = line_key(self.id, Loc::Private(0));
                let stalled = self.sbuf.stall_cycles;
                self.clock = self.sbuf.push(self.clock, key, spec.sb_drain_local);
                if self.sbuf.stall_cycles > stalled {
                    probe.sb_stall(self.sbuf.stall_cycles - stalled);
                }
                self.clock += self.inv_issue;
                counters.stores += 1;
            }
            Instr::StackPop => {
                // Reload of the freshly spilled value: forwarded from the
                // store buffer or an L1 hit.
                self.clock += self.pop_cost;
                counters.loads += 1;
            }
            Instr::Load { loc, ord } => {
                let key = line_key(self.id, loc);
                counters.loads += 1;
                let (mut cost, outcome) = if self.sbuf.forwards(self.clock, key) {
                    (spec.l1_hit * 0.5, AccessOutcome::L1Hit)
                } else {
                    mem.load(self.id, loc, spec, ctx.l1_miss_rate, ctx.dram_frac, rng)
                };
                counters.record_access(outcome);
                if ord == AccessOrd::Acquire {
                    counters.acquires += 1;
                    cost += spec.acquire_extra;
                    // An acquire orders later accesses: spend the window.
                    self.credit *= 0.5;
                }
                let exposed = self.hide(spec, cost);
                probe.access(outcome, exposed);
                self.clock += exposed;
                if cost > spec.llc_hit * 0.5 {
                    self.load_outstanding_until =
                        self.load_outstanding_until.max(self.clock + cost * 0.05);
                }
            }
            Instr::Store { loc, ord } => {
                let key = line_key(self.id, loc);
                counters.stores += 1;
                let drain = mem.store_drain(self.id, loc, spec);
                if ord == AccessOrd::Release {
                    counters.releases += 1;
                    // A release makes prior writes visible first: wait for a
                    // fraction of the pending drain, then pay the extra.
                    let wait = self.sbuf.pending_wait(self.clock) * spec.release_drain_frac;
                    let exposed = self.hide(spec, wait + spec.release_extra);
                    self.clock += exposed;
                    self.credit *= 0.5;
                }
                let stalled = self.sbuf.stall_cycles;
                self.clock = self.sbuf.push(self.clock, key, drain);
                if self.sbuf.stall_cycles > stalled {
                    probe.sb_stall(self.sbuf.stall_cycles - stalled);
                }
                self.clock += self.inv_issue;
            }
            Instr::Cas { loc, success_prob } => {
                counters.atomics += 1;
                let (acq_cost, outcome) = mem.rmw(self.id, loc, spec);
                counters.record_access(outcome);
                let mut cost = acq_cost + spec.cas_base;
                // Failed reservations retry; each retry re-pays the base.
                let p = success_prob.clamp(0.01, 1.0);
                while !rng.chance(p) {
                    cost += spec.cas_base;
                    counters.cas_retries += 1;
                }
                let exposed = self.hide(spec, cost);
                probe.access(outcome, exposed);
                self.clock += exposed;
            }
            Instr::Fence(kind) => {
                self.fence(kind, spec, ctx, counters, probe);
            }
            Instr::CostLoop { iters, stack_spill } => {
                counters.cost_loop_invocations += 1;
                counters.cost_loop_iters += iters;
                let cycles = spec.costfn_cycles(iters, stack_spill);
                // The loop is serial (each subs depends on the last): only a
                // small prefix overlaps, already in the closed form. It also
                // monopolises the window.
                self.clock += cycles;
                self.credit = 0.0;
            }
            Instr::Compute { cycles } => {
                self.clock += cycles as f64;
                self.earn(spec, spec.ooo_gain * (cycles as f64).min(8.0));
            }
        }
    }

    /// Fence timing semantics — the heart of the model.
    fn fence<P: Probe + ?Sized>(
        &mut self,
        kind: FenceKind,
        spec: &ArchSpec,
        ctx: &WorkloadCtx,
        counters: &mut Counters,
        probe: &mut P,
    ) {
        counters.record_fence(kind);
        if kind == FenceKind::Compiler {
            // No instruction emitted; it only constrains the (unmodelled)
            // compiler. Zero hardware cost.
            probe.fence_retired(kind, 0.0);
            return;
        }

        // Semantic cost, depending on machine state.
        let pending = self.sbuf.pending_wait(self.clock);
        let ldq = (self.load_outstanding_until - self.clock).max(0.0)
            + ctx.load_pressure * spec.fence_ld_queue_penalty;
        let semantic = match kind {
            FenceKind::DmbIsh | FenceKind::HwSync => {
                // Full barrier: drain everything, order loads, global ack.
                // Out-of-order state survives partially (the barrier orders
                // memory, it does not flush the pipeline like isb).
                self.credit *= 0.25;
                spec.fence_full_base + pending * spec.full_fence_drain_frac + ldq * 0.5
            }
            FenceKind::DmbIshSt => {
                // Store-store: the FIFO buffer already orders stores; only a
                // fraction of the pending drain is exposed.
                self.credit *= 0.5;
                spec.fence_st_base + pending * spec.st_fence_drain_frac
            }
            FenceKind::LwSync => {
                // Orders everything except store->load: partial drain plus
                // load ordering.
                self.credit *= 0.5;
                spec.fence_st_base + pending * spec.st_fence_drain_frac + ldq * 0.5
            }
            FenceKind::DmbIshLd => {
                // Load barrier: cost tracks outstanding loads.
                self.credit *= 0.5;
                spec.fence_ld_base + ldq
            }
            FenceKind::Isb => {
                // Pipeline flush: big, and independent of memory state.
                self.credit = 0.0;
                spec.isb_flush
            }
            FenceKind::Compiler => unreachable!(),
        };

        // Serialisation with the previous fence: a tight loop of barriers
        // retires one per `fence_serial` cycles minimum (except isb and the
        // compiler barrier). `sync`'s serial window is its own base cost.
        let serial_floor = match kind {
            FenceKind::Isb => 0.0,
            FenceKind::HwSync => spec.fence_full_base,
            _ => spec.fence_serial,
        };
        let since_last = self.clock - self.last_fence_retired;
        let serial_wait = (serial_floor - since_last).max(0.0);

        let cost = semantic.max(serial_wait);
        counters.record_fence_cycles(kind, cost);
        probe.fence_retired(kind, cost);
        self.clock += cost;
        self.last_fence_retired = self.clock;
        // Store-side and full barriers stall the frontend while the store
        // queue is reconciled; `dmb ishld` gates only the load queue, so
        // dispatch continues (part of why its in-vivo cost is so low).
        if matches!(
            kind,
            FenceKind::DmbIsh
                | FenceKind::HwSync
                | FenceKind::Isb
                | FenceKind::DmbIshSt
                | FenceKind::LwSync
        ) {
            self.fence_shadow = spec.fence_shadow_instrs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{armv8_xgene1, power7};

    fn harness() -> (ArchSpec, WorkloadCtx, MemSys, SplitMix64, Counters) {
        (
            armv8_xgene1(),
            WorkloadCtx::default(),
            MemSys::new(),
            SplitMix64::new(7),
            Counters::default(),
        )
    }

    fn run_one(
        core: &mut CoreState,
        i: Instr,
        spec: &ArchSpec,
        ctx: &WorkloadCtx,
        mem: &mut MemSys,
        rng: &mut SplitMix64,
        c: &mut Counters,
    ) -> f64 {
        let before = core.clock;
        core.step(&i, spec, ctx, mem, rng, c);
        core.clock - before
    }

    #[test]
    fn fences_on_empty_machine_cost_their_base() {
        let (spec, mut ctx, mut mem, mut rng, mut c) = harness();
        ctx.load_pressure = 0.0;
        let mut core = CoreState::new(0, &spec);
        let t = run_one(
            &mut core,
            Instr::Fence(FenceKind::DmbIsh),
            &spec,
            &ctx,
            &mut mem,
            &mut rng,
            &mut c,
        );
        assert!((t - spec.fence_full_base).abs() < 1e-9);
    }

    #[test]
    fn back_to_back_dmb_variants_are_indistinguishable() {
        // The paper could not tell dmb ish / ishld / ishst apart by
        // microbenchmarking: a tight fence loop serialises at fence_serial.
        let (spec, ctx, _, _, _) = harness();
        let mut per_kind = vec![];
        for kind in [FenceKind::DmbIsh, FenceKind::DmbIshLd, FenceKind::DmbIshSt] {
            let mut mem = MemSys::new();
            let mut rng = SplitMix64::new(3);
            let mut c = Counters::default();
            let mut core = CoreState::new(0, &spec);
            let n = 1000;
            for _ in 0..n {
                core.step(&Instr::Fence(kind), &spec, &ctx, &mut mem, &mut rng, &mut c);
            }
            per_kind.push(core.clock / n as f64);
        }
        let min = per_kind.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_kind.iter().cloned().fold(0.0, f64::max);
        assert!(
            (max - min) / max < 0.05,
            "variants distinguishable in micro loop: {per_kind:?}"
        );
        assert!((max - spec.fence_serial).abs() / spec.fence_serial < 0.1);
    }

    #[test]
    fn full_fence_waits_for_store_buffer() {
        let (spec, ctx, mut mem, mut rng, mut c) = harness();
        let mut core = CoreState::new(0, &spec);
        // Fill the buffer with remote stores (expensive drains).
        for i in 0..8 {
            core.step(
                &Instr::Store {
                    loc: Loc::SharedRw(100 + i),
                    ord: AccessOrd::Plain,
                },
                &spec,
                &ctx,
                &mut mem,
                &mut rng,
                &mut c,
            );
        }
        let t_busy = run_one(
            &mut core,
            Instr::Fence(FenceKind::DmbIsh),
            &spec,
            &ctx,
            &mut mem,
            &mut rng,
            &mut c,
        );
        assert!(
            t_busy > spec.fence_full_base * 2.0,
            "fence should wait for drains: {t_busy}"
        );
    }

    #[test]
    fn store_fence_cheaper_than_full_fence_under_load() {
        let (spec, ctx, _, _, _) = harness();
        let cost = |kind: FenceKind| {
            let mut mem = MemSys::new();
            let mut rng = SplitMix64::new(11);
            let mut c = Counters::default();
            let mut core = CoreState::new(0, &spec);
            for i in 0..8 {
                core.step(
                    &Instr::Store {
                        loc: Loc::SharedRw(200 + i),
                        ord: AccessOrd::Plain,
                    },
                    &spec,
                    &ctx,
                    &mut mem,
                    &mut rng,
                    &mut c,
                );
            }
            let before = core.clock;
            core.step(&Instr::Fence(kind), &spec, &ctx, &mut mem, &mut rng, &mut c);
            core.clock - before
        };
        let full = cost(FenceKind::DmbIsh);
        let st = cost(FenceKind::DmbIshSt);
        assert!(
            st < full,
            "ishst ({st}) should be cheaper than ish ({full}) with a busy buffer"
        );
    }

    #[test]
    fn lwsync_cheaper_than_hwsync() {
        let spec = power7();
        let ctx = WorkloadCtx::default();
        let cost = |kind: FenceKind| {
            let mut mem = MemSys::new();
            let mut rng = SplitMix64::new(5);
            let mut c = Counters::default();
            let mut core = CoreState::new(0, &spec);
            for i in 0..6 {
                core.step(
                    &Instr::Store {
                        loc: Loc::SharedRw(300 + i),
                        ord: AccessOrd::Plain,
                    },
                    &spec,
                    &ctx,
                    &mut mem,
                    &mut rng,
                    &mut c,
                );
            }
            let before = core.clock;
            core.step(&Instr::Fence(kind), &spec, &ctx, &mut mem, &mut rng, &mut c);
            core.clock - before
        };
        assert!(cost(FenceKind::LwSync) < cost(FenceKind::HwSync));
    }

    #[test]
    fn isb_cost_is_context_independent() {
        let (spec, ctx, _, _, _) = harness();
        // Empty machine.
        let mut mem = MemSys::new();
        let mut rng = SplitMix64::new(2);
        let mut c = Counters::default();
        let mut core = CoreState::new(0, &spec);
        let empty = run_one(
            &mut core,
            Instr::Fence(FenceKind::Isb),
            &spec,
            &ctx,
            &mut mem,
            &mut rng,
            &mut c,
        );
        // Busy machine.
        let mut core2 = CoreState::new(0, &spec);
        for i in 0..8 {
            core2.step(
                &Instr::Store {
                    loc: Loc::SharedRw(400 + i),
                    ord: AccessOrd::Plain,
                },
                &spec,
                &ctx,
                &mut mem,
                &mut rng,
                &mut c,
            );
        }
        let busy = run_one(
            &mut core2,
            Instr::Fence(FenceKind::Isb),
            &spec,
            &ctx,
            &mut mem,
            &mut rng,
            &mut c,
        );
        assert!((busy - empty).abs() < 1e-9, "isb: {empty} vs {busy}");
    }

    #[test]
    fn compiler_barrier_is_free() {
        let (spec, ctx, mut mem, mut rng, mut c) = harness();
        let mut core = CoreState::new(0, &spec);
        let t = run_one(
            &mut core,
            Instr::Fence(FenceKind::Compiler),
            &spec,
            &ctx,
            &mut mem,
            &mut rng,
            &mut c,
        );
        assert_eq!(t, 0.0);
    }

    #[test]
    fn ishld_cost_scales_with_load_pressure() {
        let (spec, _, _, _, _) = harness();
        let cost = |pressure: f64| {
            let ctx = WorkloadCtx {
                load_pressure: pressure,
                ..WorkloadCtx::default()
            };
            let mut mem = MemSys::new();
            let mut rng = SplitMix64::new(9);
            let mut c = Counters::default();
            let mut core = CoreState::new(0, &spec);
            // Space out from any previous fence.
            core.clock = 1000.0;
            let before = core.clock;
            core.step(
                &Instr::Fence(FenceKind::DmbIshLd),
                &spec,
                &ctx,
                &mut mem,
                &mut rng,
                &mut c,
            );
            core.clock - before
        };
        let light = cost(0.1);
        let heavy = cost(1.0);
        assert!(
            heavy > light * 2.0,
            "ishld should track load pressure: {light} vs {heavy}"
        );
    }

    #[test]
    fn cost_loop_time_matches_closed_form() {
        let (spec, ctx, mut mem, mut rng, mut c) = harness();
        let mut core = CoreState::new(0, &spec);
        let t = run_one(
            &mut core,
            Instr::CostLoop {
                iters: 1024,
                stack_spill: true,
            },
            &spec,
            &ctx,
            &mut mem,
            &mut rng,
            &mut c,
        );
        assert!((t - spec.costfn_cycles(1024, true)).abs() < 1e-9);
        assert_eq!(c.cost_loop_invocations, 1);
        assert_eq!(c.cost_loop_iters, 1024);
    }

    #[test]
    fn release_store_waits_on_pending_drains() {
        let (spec, ctx, mut mem, mut rng, mut c) = harness();
        let mut core = CoreState::new(0, &spec);
        for i in 0..8 {
            core.step(
                &Instr::Store {
                    loc: Loc::SharedRw(500 + i),
                    ord: AccessOrd::Plain,
                },
                &spec,
                &ctx,
                &mut mem,
                &mut rng,
                &mut c,
            );
        }
        let rel = run_one(
            &mut core,
            Instr::Store {
                loc: Loc::SharedRw(600),
                ord: AccessOrd::Release,
            },
            &spec,
            &ctx,
            &mut mem,
            &mut rng,
            &mut c,
        );
        let mut core2 = CoreState::new(1, &spec);
        let plain = run_one(
            &mut core2,
            Instr::Store {
                loc: Loc::SharedRw(601),
                ord: AccessOrd::Plain,
            },
            &spec,
            &ctx,
            &mut mem,
            &mut rng,
            &mut c,
        );
        assert!(rel > plain, "release {rel} vs plain {plain}");
    }
}
