//! The simulated instruction set.
//!
//! This is not a full ISA — it is the *performance-relevant* vocabulary the
//! paper manipulates: plain/acquire/release memory accesses, the fence
//! instructions of ARMv8 and POWER, branches with a controllable
//! mispredictability (for synthetic control dependencies), stack spills, nops
//! for size-invariant padding, coarse compute blocks, and the paper's
//! spin-loop cost function as a first-class instruction so that huge
//! iteration counts need not be simulated one branch at a time.
//!
//! Both target architectures have fixed 4-byte instructions, which is what
//! makes the paper's size-invariant binary rewriting possible; [`Instr::size`]
//! reports the encoded size in instruction words so the injection layer can
//! assert invariance.

/// Memory-access ordering attached to a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOrd {
    /// Ordinary access (`ldr`/`str`, `ld`/`std`).
    Plain,
    /// Load-acquire (`ldar` on ARMv8). On POWER modelled as `ld; lwsync`
    /// folded into one access by the lowering layer.
    Acquire,
    /// Store-release (`stlr` on ARMv8).
    Release,
}

/// Fence (memory-barrier) instructions across both architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// ARMv8 `dmb ish` — full barrier (inner shareable domain).
    DmbIsh,
    /// ARMv8 `dmb ishld` — orders loads against later loads and stores.
    DmbIshLd,
    /// ARMv8 `dmb ishst` — orders stores against later stores.
    DmbIshSt,
    /// ARMv8 `isb` — instruction synchronisation barrier (pipeline flush).
    Isb,
    /// POWER `sync` (heavyweight sync, a.k.a. `hwsync`) — full barrier.
    HwSync,
    /// POWER `lwsync` (lightweight sync) — all orderings except store→load.
    LwSync,
    /// Compiler-only barrier: no instruction is emitted; zero hardware cost.
    Compiler,
}

impl FenceKind {
    /// Human-readable mnemonic, as printed in the paper's figures.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FenceKind::DmbIsh => "dmb ish",
            FenceKind::DmbIshLd => "dmb ishld",
            FenceKind::DmbIshSt => "dmb ishst",
            FenceKind::Isb => "isb",
            FenceKind::HwSync => "sync",
            FenceKind::LwSync => "lwsync",
            FenceKind::Compiler => "barrier()",
        }
    }

    /// Every fence kind, in a stable order (telemetry serialisation and
    /// deterministic iteration rely on this ordering never changing).
    pub const ALL: [FenceKind; 7] = [
        FenceKind::DmbIsh,
        FenceKind::DmbIshLd,
        FenceKind::DmbIshSt,
        FenceKind::Isb,
        FenceKind::HwSync,
        FenceKind::LwSync,
        FenceKind::Compiler,
    ];

    /// All hardware fence kinds (excluding the compiler-only barrier).
    pub fn all_hardware() -> [FenceKind; 6] {
        [
            FenceKind::DmbIsh,
            FenceKind::DmbIshLd,
            FenceKind::DmbIshSt,
            FenceKind::Isb,
            FenceKind::HwSync,
            FenceKind::LwSync,
        ]
    }

    /// Inverse of [`FenceKind::mnemonic`], for parsing serialised telemetry.
    pub fn from_mnemonic(s: &str) -> Option<FenceKind> {
        FenceKind::ALL.into_iter().find(|k| k.mnemonic() == s)
    }
}

/// Address classes. The timing model does not need byte addresses — it needs
/// to know how an access interacts with the cache hierarchy and with other
/// cores, so locations are classified by sharing behaviour. The `u64` is a
/// line identifier within the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// Thread-private data (stack, TLAB): hits L1 after first touch and never
    /// generates coherence traffic.
    Private(u64),
    /// Read-mostly shared data (code constants, interned strings): may be
    /// replicated in every L1 without invalidations.
    SharedRo(u64),
    /// Read-write shared data: ownership is tracked by the coherence
    /// directory; writes by one core invalidate copies in others.
    SharedRw(u64),
}

impl Loc {
    /// The line identifier inside the class.
    pub fn line(self) -> u64 {
        match self {
            Loc::Private(l) | Loc::SharedRo(l) | Loc::SharedRw(l) => l,
        }
    }
}

/// How predictable a conditional branch is. Synthetic control dependencies
/// (the kernel `ctrl` strategy of Fig. 10) compare a just-loaded value
/// against a constant; their prediction rate depends on the surrounding
/// workload, which the paper observes as a micro/macro divergence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mispredict {
    /// Never mispredicted (e.g. a loop back-edge with a trivial pattern).
    Never,
    /// Fixed mispredict probability.
    Rate(f64),
    /// Use the running workload's branch-pressure parameter
    /// ([`crate::machine::WorkloadCtx::bp_pressure`]).
    Workload,
}

/// One simulated instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `nop` — occupies space, costs (almost) nothing. The padding
    /// instruction for size-invariant rewriting.
    Nop,
    /// Move-immediate / register move.
    MovImm,
    /// Generic single-cycle ALU operation.
    Alu,
    /// Compare against an immediate.
    CmpImm,
    /// Conditional branch with the given prediction behaviour.
    CondBranch(Mispredict),
    /// Stack spill: `stp x9, xzr, [sp,#-16]!` (ARM) or `std r11,-8(r1)`
    /// (POWER). Cheap store to a private line.
    StackPush,
    /// Stack reload: `ldp`/`ld` of the spilled register.
    StackPop,
    /// Memory load.
    Load {
        /// Location accessed.
        loc: Loc,
        /// Ordering attribute.
        ord: AccessOrd,
    },
    /// Memory store (retires through the store buffer).
    Store {
        /// Location accessed.
        loc: Loc,
        /// Ordering attribute.
        ord: AccessOrd,
    },
    /// Atomic read-modify-write (load-linked/store-conditional or `lwarx`/
    /// `stwcx` pair). Acquires the line exclusively.
    Cas {
        /// Location accessed.
        loc: Loc,
        /// Probability the reservation succeeds first try (contention model).
        success_prob: f64,
    },
    /// Memory barrier instruction.
    Fence(FenceKind),
    /// The paper's spin-loop cost function (Figs. 2 and 3), timed natively.
    ///
    /// `stack_spill` selects the variant that must save/restore the counter
    /// register (Fig. 2 lines 1 and 5) versus the OpenJDK-ARM variant where a
    /// scratch register is available ("arm-nostack" in Fig. 4).
    CostLoop {
        /// Loop iteration count N.
        iters: u64,
        /// Whether the counter register must be spilled to the stack.
        stack_spill: bool,
    },
    /// A coarse block of straight-line computation worth `cycles` cycles
    /// after accounting for instruction-level parallelism. Workload
    /// generators use this for the non-barrier bulk of an application.
    Compute {
        /// Amortised cycle cost of the block.
        cycles: u32,
    },
}

impl Instr {
    /// Encoded size in 4-byte instruction words, used to check
    /// size-invariant rewriting. `Compute` blocks and cost loops report the
    /// space their real encoding would occupy.
    pub fn size(&self) -> u64 {
        match self {
            Instr::Nop
            | Instr::MovImm
            | Instr::Alu
            | Instr::CmpImm
            | Instr::CondBranch(_)
            | Instr::StackPush
            | Instr::StackPop
            | Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::Fence(_) => 1,
            // ll/sc loop: load-exclusive, op, store-exclusive, branch.
            Instr::Cas { .. } => 4,
            // mov N; subs; bne (+ optional stp/ldp) — Figs. 2/3.
            Instr::CostLoop { stack_spill, .. } => {
                if *stack_spill {
                    5
                } else {
                    3
                }
            }
            // Compute blocks stand for real application code; their size is
            // irrelevant to barrier-site invariance, report 0.
            Instr::Compute { .. } => 0,
        }
    }

    /// Whether this instruction is a memory barrier of kind `k`.
    pub fn is_fence(&self, k: FenceKind) -> bool {
        matches!(self, Instr::Fence(f) if *f == k)
    }
}

/// Total encoded size of an instruction sequence, in words.
pub fn seq_size(instrs: &[Instr]) -> u64 {
    instrs.iter().map(Instr::size).sum()
}

/// Pad `instrs` with `Nop`s up to `target` words. Panics if the sequence is
/// already larger than `target` — the caller chose an insufficient envelope.
pub fn pad_to(mut instrs: Vec<Instr>, target: u64) -> Vec<Instr> {
    let sz = seq_size(&instrs);
    assert!(
        sz <= target,
        "sequence of {sz} words cannot be padded to {target}"
    );
    for _ in sz..target {
        instrs.push(Instr::Nop);
    }
    instrs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_figures() {
        // Fig. 2: stp, mov, subs, bne, ldp = 5 instructions.
        assert_eq!(
            Instr::CostLoop {
                iters: 8,
                stack_spill: true
            }
            .size(),
            5
        );
        // OpenJDK ARM variant elides the stack ops: mov, subs, bne.
        assert_eq!(
            Instr::CostLoop {
                iters: 8,
                stack_spill: false
            }
            .size(),
            3
        );
    }

    #[test]
    fn pad_to_is_size_invariant() {
        let a = pad_to(vec![Instr::Fence(FenceKind::DmbIsh)], 4);
        let b = pad_to(
            vec![
                Instr::CmpImm,
                Instr::CondBranch(Mispredict::Workload),
                Instr::Fence(FenceKind::Isb),
            ],
            4,
        );
        assert_eq!(seq_size(&a), seq_size(&b));
        assert_eq!(a.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot be padded")]
    fn pad_to_rejects_overflow() {
        pad_to(vec![Instr::Nop; 5], 4);
    }

    #[test]
    fn mnemonics_are_papers() {
        assert_eq!(FenceKind::HwSync.mnemonic(), "sync");
        assert_eq!(FenceKind::LwSync.mnemonic(), "lwsync");
        assert_eq!(FenceKind::DmbIshLd.mnemonic(), "dmb ishld");
    }

    #[test]
    fn loc_line_extraction() {
        assert_eq!(Loc::Private(7).line(), 7);
        assert_eq!(Loc::SharedRw(9).line(), 9);
    }
}
