//! # wmm-sim
//!
//! A deterministic, discrete-event **timing simulator** of weak-memory
//! multicores, standing in for the ARMv8 (X-Gene 1) and POWER7 machines used
//! in *Benchmarking Weak Memory Models* (Ritson & Owens, PPoPP 2016).
//!
//! ## Why a simulator
//!
//! The paper's methodology treats the machine as a device whose fence costs
//! are *context dependent*: a `dmb ish` costs more when the store buffer is
//! full, `dmb ishld` costs more when loads are outstanding, `isb` pays a
//! pipeline flush, POWER's `sync` pays a global acknowledgement that `lwsync`
//! does not, and microbenchmarks (which run with empty buffers) cannot
//! observe any of this. This crate models exactly those phenomena:
//!
//! * per-core **store buffers** drained asynchronously, with drain cost
//!   depending on cache-line ownership ([`sbuf`]);
//! * a **coherence directory** over shared lines plus private-L1/LLC/DRAM
//!   latencies ([`mem`]);
//! * an **out-of-order overlap** model that hides part of small costs
//!   ([`machine`]);
//! * per-architecture **fence semantics and costs** ([`arch`], [`exec`]);
//! * native, closed-form timing of the paper's spin-loop **cost functions**
//!   (Figs. 2–4), including the sub-linear small-N region caused by
//!   pipelining ([`isa::Instr::CostLoop`]).
//!
//! Everything is seeded and reproducible: the same ([`Program`],
//! [`WorkloadCtx`], seed) triple always yields the same [`ExecStats`].
//!
//! ## Quick example
//!
//! ```
//! use wmm_sim::{arch, isa::{Instr, Loc, AccessOrd, FenceKind}, Machine, Program, WorkloadCtx};
//!
//! let spec = arch::armv8_xgene1();
//! let thread = vec![
//!     Instr::Store { loc: Loc::SharedRw(1), ord: AccessOrd::Plain },
//!     Instr::Fence(FenceKind::DmbIsh),
//!     Instr::Load { loc: Loc::SharedRw(2), ord: AccessOrd::Plain },
//! ];
//! let prog = Program::new(vec![thread.clone(), thread]);
//! let stats = Machine::new(spec).run(&prog, &WorkloadCtx::default(), 42);
//! assert!(stats.wall_ns > 0.0);
//! assert_eq!(stats.fences(FenceKind::DmbIsh), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod exec;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod probe;
pub mod rng;
pub mod sbuf;
pub mod sched;
pub mod stats;

pub use arch::{Arch, ArchSpec};
pub use isa::{AccessOrd, FenceKind, Instr, Loc};
pub use machine::{Machine, MachineScratch, Program, WorkloadCtx};
pub use probe::{NullProbe, Probe, SiteStallProbe};
pub use rng::SplitMix64;
pub use stats::{ExecStats, SiteStall};
