//! The multicore machine: interleaves per-core execution in global time
//! order through the shared memory system.

use crate::arch::ArchSpec;
use crate::exec::CoreState;
use crate::isa::Instr;
use crate::mem::MemSys;
use crate::probe::{NullProbe, Probe, SiteStallProbe};
use crate::rng::SplitMix64;
use crate::stats::{Counters, ExecStats};

/// A multithreaded program: one instruction stream per simulated thread.
/// Threads beyond the machine's core count are rejected — the platforms and
/// workload generators handle scheduling decisions above this layer.
#[derive(Debug, Clone)]
pub struct Program {
    /// One instruction stream per thread.
    pub threads: Vec<Vec<Instr>>,
}

impl Program {
    /// Build a program from per-thread instruction streams.
    pub fn new(threads: Vec<Vec<Instr>>) -> Self {
        assert!(!threads.is_empty(), "program needs at least one thread");
        Program { threads }
    }

    /// Total instruction count across threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Workload-level execution context: locality and pipeline-pressure
/// characteristics that belong to the *application*, not the machine.
///
/// These are the knobs through which the synthetic workloads reproduce the
/// paper's observed micro/macro divergences (see `wmm-workloads`).
#[derive(Debug, Clone)]
pub struct WorkloadCtx {
    /// Descriptive name (propagated into reports).
    pub name: String,
    /// Mispredict probability of `Mispredict::Workload` branches — the
    /// branch-predictor pressure of the surrounding application. The paper
    /// speculates exactly this effect for the kernel `ctrl` strategy (§4.3.1).
    pub bp_pressure: f64,
    /// Load-queue pressure observed by `dmb ishld` at fence sites (0..1):
    /// lmbench-style syscall-dense code keeps the load queue hot; most
    /// macrobenchmarks do not.
    pub load_pressure: f64,
    /// L1 miss rate of private/read-only data.
    pub l1_miss_rate: f64,
    /// Fraction of those misses that go all the way to DRAM.
    pub dram_frac: f64,
    /// Per-run multiplicative noise amplitude (scheduling, SMT, frequency):
    /// the workload "stability" of the paper. Applied once per run.
    pub noise_amp: f64,
}

impl Default for WorkloadCtx {
    fn default() -> Self {
        WorkloadCtx {
            name: "default".to_string(),
            bp_pressure: 0.05,
            load_pressure: 0.15,
            l1_miss_rate: 0.02,
            dram_frac: 0.1,
            noise_amp: 0.0,
        }
    }
}

/// A simulated multicore machine.
#[derive(Debug, Clone)]
pub struct Machine {
    spec: ArchSpec,
}

impl Machine {
    /// Build a machine from an architecture spec.
    pub fn new(spec: ArchSpec) -> Self {
        Machine { spec }
    }

    /// The architecture spec this machine models.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Execute `program` to completion and return timing statistics.
    ///
    /// Deterministic: the same `(program, ctx, seed)` triple always produces
    /// identical results. Different seeds vary the stochastic components
    /// (cache misses on private data, branch mispredicts, run-level noise) —
    /// one seed corresponds to one of the paper's benchmark samples.
    pub fn run(&self, program: &Program, ctx: &WorkloadCtx, seed: u64) -> ExecStats {
        self.run_probed(program, ctx, seed, &mut NullProbe)
    }

    /// [`Machine::run`] with per-site stall attribution: the run is driven
    /// through a [`SiteStallProbe`] and the returned statistics carry
    /// `per_site: Some(..)`. Every other field — wall time, core cycles,
    /// counters, store-buffer stalls — is bit-identical to [`Machine::run`]
    /// on the same inputs: the probe observes, it never perturbs.
    pub fn run_sited(&self, program: &Program, ctx: &WorkloadCtx, seed: u64) -> ExecStats {
        let mut probe = SiteStallProbe::new();
        let mut stats = self.run_probed(program, ctx, seed, &mut probe);
        stats.per_site = Some(probe.finish());
        stats
    }

    /// [`Machine::run`] driving execution events through `probe` (the
    /// observability seam; see [`crate::probe`]). Results are bit-identical
    /// regardless of the probe attached.
    pub fn run_probed(
        &self,
        program: &Program,
        ctx: &WorkloadCtx,
        seed: u64,
        probe: &mut dyn Probe,
    ) -> ExecStats {
        assert!(
            program.threads.len() <= self.spec.cores * self.spec.smt as usize,
            "program has {} threads but machine exposes {} hardware contexts",
            program.threads.len(),
            self.spec.cores * self.spec.smt as usize
        );
        let mut root = SplitMix64::new(seed ^ 0x5DEE_CE66_D1CE_5EED);
        // Run-level noise factor: models scheduling/SMT/frequency jitter that
        // shifts a whole sample, the dominant term in unstable benchmarks.
        let run_noise = root.jitter(ctx.noise_amp);
        // SMT contention: when more threads run than physical cores, or the
        // machine time-slices SMT contexts, cores interfere. POWER7's 4-way
        // SMT adds extra jitter even for modest thread counts.
        let smt_noise = if self.spec.smt > 1 {
            root.jitter(ctx.noise_amp * 0.5)
        } else {
            1.0
        };

        let mut mem = MemSys::new();
        let mut counters = Counters::default();
        let mut cores: Vec<CoreState> = (0..program.threads.len())
            .map(|id| CoreState::new(id, &self.spec))
            .collect();
        let mut rngs: Vec<SplitMix64> = (0..program.threads.len()).map(|_| root.split()).collect();
        // Stagger thread start times slightly, as a real scheduler would.
        for (i, core) in cores.iter_mut().enumerate() {
            core.clock = (i as f64) * 20.0 + rngs[i].next_f64() * 10.0;
        }

        // Interleave: always step the core with the smallest local clock so
        // cross-core coherence interactions happen in global time order.
        let mut live: Vec<usize> = (0..cores.len())
            .filter(|&i| !program.threads[i].is_empty())
            .collect();
        while !live.is_empty() {
            let (slot, &idx) = live
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    cores[a]
                        .clock
                        .partial_cmp(&cores[b].clock)
                        .expect("clocks are finite")
                })
                .expect("live is non-empty");
            let core = &mut cores[idx];
            let instr = &program.threads[idx][core.pc];
            probe.begin(idx, core.pc, instr);
            let before = core.clock;
            core.step_probed(
                instr,
                &self.spec,
                ctx,
                &mut mem,
                &mut rngs[idx],
                &mut counters,
                probe,
            );
            probe.retire(idx, core.pc, core.clock - before, core.clock);
            core.pc += 1;
            if core.pc >= program.threads[idx].len() {
                live.swap_remove(slot);
            }
        }

        let mut sb_stall_cycles = 0.0;
        let mut sb_stalls = 0;
        for core in &cores {
            sb_stall_cycles += core.sbuf.stall_cycles;
            sb_stalls += core.sbuf.stalls;
        }
        let max_cycles = cores.iter().map(|c| c.clock).fold(0.0_f64, f64::max);
        ExecStats {
            wall_ns: self.spec.ns(max_cycles) * run_noise * smt_noise,
            core_cycles: cores.iter().map(|c| c.clock).collect(),
            counters,
            sb_stall_cycles,
            sb_stalls,
            per_site: None,
        }
    }

    /// Convenience micro-harness: time a tight loop of `n` repetitions of
    /// `body` on a single core, returning mean nanoseconds per repetition.
    ///
    /// This is the "basic microbenchmarking" of §4.2.1 (e.g. measuring
    /// `sync` at 18.9 ns and `lwsync` at 6.1 ns) — and it demonstrates the
    /// limits the paper highlights: run it on `dmb ish` vs `dmb ishst` and
    /// you will see no difference, because the machine is otherwise idle.
    pub fn time_sequence_ns(&self, body: &[Instr], n: usize, seed: u64) -> f64 {
        let mut stream = Vec::with_capacity(body.len() * n);
        for _ in 0..n {
            stream.extend_from_slice(body);
        }
        let ctx = WorkloadCtx {
            name: "micro".to_string(),
            bp_pressure: 0.0,
            load_pressure: 0.0,
            l1_miss_rate: 0.0,
            dram_frac: 0.0,
            noise_amp: 0.0,
        };
        let stats = self.run(&Program::new(vec![stream]), &ctx, seed);
        stats.wall_ns / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{armv8_xgene1, power7};
    use crate::isa::{AccessOrd, FenceKind, Loc};

    fn store(line: u64) -> Instr {
        Instr::Store {
            loc: Loc::SharedRw(line),
            ord: AccessOrd::Plain,
        }
    }

    fn load(line: u64) -> Instr {
        Instr::Load {
            loc: Loc::SharedRw(line),
            ord: AccessOrd::Plain,
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let m = Machine::new(armv8_xgene1());
        let prog = Program::new(vec![
            vec![store(1), Instr::Fence(FenceKind::DmbIsh), load(2)],
            vec![store(2), Instr::Fence(FenceKind::DmbIsh), load(1)],
        ]);
        let ctx = WorkloadCtx::default();
        let a = m.run(&prog, &ctx, 99);
        let b = m.run(&prog, &ctx, 99);
        assert_eq!(a.wall_ns, b.wall_ns);
        assert_eq!(a.core_cycles, b.core_cycles);
    }

    #[test]
    fn different_seeds_vary_with_noise() {
        let m = Machine::new(armv8_xgene1());
        let prog = Program::new(vec![vec![load(1); 100]]);
        let ctx = WorkloadCtx {
            l1_miss_rate: 0.3,
            noise_amp: 0.02,
            ..WorkloadCtx::default()
        };
        let a = m.run(&prog, &ctx, 1);
        let b = m.run(&prog, &ctx, 2);
        assert_ne!(a.wall_ns, b.wall_ns);
    }

    #[test]
    fn rejects_too_many_threads() {
        let m = Machine::new(armv8_xgene1()); // 8 cores, no SMT
        let threads = vec![vec![Instr::Nop]; 9];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(&Program::new(threads), &WorkloadCtx::default(), 0)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn power7_smt_accepts_many_threads() {
        let m = Machine::new(power7()); // 12 cores x 4 SMT
        let threads = vec![vec![Instr::Nop]; 16];
        let stats = m.run(&Program::new(threads), &WorkloadCtx::default(), 0);
        assert_eq!(stats.core_cycles.len(), 16);
    }

    #[test]
    fn micro_timing_of_power_fences_matches_paper() {
        // §4.2.1: "Basic microbenchmarking of sync and lwsync determines
        // their execution times to be 6.1ns and 18.9ns respectively."
        let m = Machine::new(power7());
        let lw = m.time_sequence_ns(&[Instr::Fence(FenceKind::LwSync)], 2000, 1);
        let hw = m.time_sequence_ns(&[Instr::Fence(FenceKind::HwSync)], 2000, 1);
        assert!((lw - 6.1).abs() < 0.5, "lwsync micro {lw} ns");
        assert!((hw - 18.9).abs() < 1.0, "sync micro {hw} ns");
    }

    #[test]
    fn micro_timing_cannot_distinguish_dmb_variants() {
        let m = Machine::new(armv8_xgene1());
        let ish = m.time_sequence_ns(&[Instr::Fence(FenceKind::DmbIsh)], 2000, 1);
        let ishst = m.time_sequence_ns(&[Instr::Fence(FenceKind::DmbIshSt)], 2000, 1);
        let ishld = m.time_sequence_ns(&[Instr::Fence(FenceKind::DmbIshLd)], 2000, 1);
        assert!((ish - ishst).abs() / ish < 0.05, "{ish} vs {ishst}");
        assert!((ish - ishld).abs() / ish < 0.05, "{ish} vs {ishld}");
    }

    #[test]
    fn contended_line_slower_than_private() {
        let m = Machine::new(armv8_xgene1());
        let ctx = WorkloadCtx::default();
        // Paced ping-pong keeps both threads concurrently active so the
        // line genuinely bounces between caches.
        let paced = |line: u64, tid: u64| -> Vec<Instr> {
            (0..150)
                .flat_map(|i| {
                    vec![
                        Instr::Compute { cycles: 40 },
                        if (i + tid).is_multiple_of(2) {
                            store(line)
                        } else {
                            load(line)
                        },
                    ]
                })
                .collect()
        };
        let contended = Program::new(vec![paced(7, 0), paced(7, 1)]);
        let disjoint = Program::new(vec![paced(8, 0), paced(9, 1)]);
        let c = m.run(&contended, &ctx, 3);
        let d = m.run(&disjoint, &ctx, 3);
        assert!(
            c.wall_ns > d.wall_ns,
            "contention should cost: {} vs {}",
            c.wall_ns,
            d.wall_ns
        );
        assert!(c.counters.coherence_transfers > d.counters.coherence_transfers);
    }

    #[test]
    fn wall_time_is_max_core_time() {
        let m = Machine::new(armv8_xgene1());
        let prog = Program::new(vec![
            vec![Instr::Compute { cycles: 10_000 }],
            vec![Instr::Compute { cycles: 10 }],
        ]);
        let stats = m.run(&prog, &WorkloadCtx::default(), 0);
        let max_c = stats.core_cycles.iter().cloned().fold(0.0, f64::max);
        assert!((stats.wall_ns - m.spec().ns(max_c)).abs() < 1e-9);
    }

    #[test]
    fn program_len_counts_all_threads() {
        let p = Program::new(vec![vec![Instr::Nop; 3], vec![Instr::Nop; 2]]);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }
}
