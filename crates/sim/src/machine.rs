//! The multicore machine: interleaves per-core execution in global time
//! order through the shared memory system.

use crate::arch::ArchSpec;
use crate::exec::CoreState;
use crate::isa::Instr;
use crate::mem::MemSys;
use crate::probe::{NullProbe, Probe, SiteStallProbe};
use crate::rng::SplitMix64;
use crate::sched::CoreHeap;
use crate::stats::{Counters, ExecStats};

/// A multithreaded program: one instruction stream per simulated thread.
/// Threads beyond the machine's core count are rejected — the platforms and
/// workload generators handle scheduling decisions above this layer.
///
/// Instruction streams are fixed at construction ([`Program::new`] is the
/// only way to build one), which is what lets the total length be cached
/// instead of recomputed by hot-loop callers.
#[derive(Debug, Clone)]
pub struct Program {
    /// One instruction stream per thread.
    pub threads: Vec<Vec<Instr>>,
    /// Cached total instruction count (the streams are immutable).
    len: usize,
}

impl Program {
    /// Build a program from per-thread instruction streams.
    pub fn new(threads: Vec<Vec<Instr>>) -> Self {
        assert!(!threads.is_empty(), "program needs at least one thread");
        let len = threads.iter().map(Vec::len).sum();
        Program { threads, len }
    }

    /// Total instruction count across threads (cached at construction).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Workload-level execution context: locality and pipeline-pressure
/// characteristics that belong to the *application*, not the machine.
///
/// These are the knobs through which the synthetic workloads reproduce the
/// paper's observed micro/macro divergences (see `wmm-workloads`).
#[derive(Debug, Clone)]
pub struct WorkloadCtx {
    /// Descriptive name (propagated into reports).
    pub name: String,
    /// Mispredict probability of `Mispredict::Workload` branches — the
    /// branch-predictor pressure of the surrounding application. The paper
    /// speculates exactly this effect for the kernel `ctrl` strategy (§4.3.1).
    pub bp_pressure: f64,
    /// Load-queue pressure observed by `dmb ishld` at fence sites (0..1):
    /// lmbench-style syscall-dense code keeps the load queue hot; most
    /// macrobenchmarks do not.
    pub load_pressure: f64,
    /// L1 miss rate of private/read-only data.
    pub l1_miss_rate: f64,
    /// Fraction of those misses that go all the way to DRAM.
    pub dram_frac: f64,
    /// Per-run multiplicative noise amplitude (scheduling, SMT, frequency):
    /// the workload "stability" of the paper. Applied once per run.
    pub noise_amp: f64,
}

impl Default for WorkloadCtx {
    fn default() -> Self {
        WorkloadCtx {
            name: "default".to_string(),
            bp_pressure: 0.05,
            load_pressure: 0.15,
            l1_miss_rate: 0.02,
            dram_frac: 0.1,
            noise_amp: 0.0,
        }
    }
}

impl WorkloadCtx {
    /// Check that every numeric field is finite and non-negative.
    ///
    /// A NaN or negative pressure/rate would poison core clocks mid-run and
    /// detonate deep inside a batch; [`Machine::run_probed_with`] rejects
    /// such contexts up front with the offending field named instead.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("bp_pressure", self.bp_pressure),
            ("load_pressure", self.load_pressure),
            ("l1_miss_rate", self.l1_miss_rate),
            ("dram_frac", self.dram_frac),
            ("noise_amp", self.noise_amp),
        ];
        for (field, value) in fields {
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "workload ctx `{}`: {field} must be finite and non-negative, got {value}",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

/// Reusable per-run simulation state: core states (including their
/// store-buffer queues), per-core RNG streams, the memory system's line
/// maps, and the scheduler heap.
///
/// `Machine::run` rebuilds all of this per run; executors that drain
/// thousands of jobs instead keep one scratch per worker thread and call
/// [`Machine::run_with`] / [`Machine::run_sited_with`], which reset the
/// state in place and reuse every allocation. A scratch is freely reusable
/// across machines and architectures — each run fully re-initialises the
/// spec-dependent fields — and results are bit-identical to the
/// allocate-fresh path.
#[derive(Debug, Default)]
pub struct MachineScratch {
    cores: Vec<CoreState>,
    rngs: Vec<SplitMix64>,
    mem: MemSys,
    heap: CoreHeap,
}

impl MachineScratch {
    /// An empty scratch arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A simulated multicore machine.
#[derive(Debug, Clone)]
pub struct Machine {
    spec: ArchSpec,
}

impl Machine {
    /// Build a machine from an architecture spec.
    pub fn new(spec: ArchSpec) -> Self {
        Machine { spec }
    }

    /// The architecture spec this machine models.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// Execute `program` to completion and return timing statistics.
    ///
    /// Deterministic: the same `(program, ctx, seed)` triple always produces
    /// identical results. Different seeds vary the stochastic components
    /// (cache misses on private data, branch mispredicts, run-level noise) —
    /// one seed corresponds to one of the paper's benchmark samples.
    pub fn run(&self, program: &Program, ctx: &WorkloadCtx, seed: u64) -> ExecStats {
        self.run_probed(program, ctx, seed, &mut NullProbe)
    }

    /// [`Machine::run`] reusing a [`MachineScratch`] arena instead of
    /// allocating fresh per-run state — the executor hot path.
    pub fn run_with(
        &self,
        program: &Program,
        ctx: &WorkloadCtx,
        seed: u64,
        scratch: &mut MachineScratch,
    ) -> ExecStats {
        // Monomorphized over NullProbe: every probe call compiles away.
        self.run_loop(program, ctx, seed, &mut NullProbe, scratch)
    }

    /// [`Machine::run`] with per-site stall attribution: the run is driven
    /// through a [`SiteStallProbe`] and the returned statistics carry
    /// `per_site: Some(..)`. Every other field — wall time, core cycles,
    /// counters, store-buffer stalls — is bit-identical to [`Machine::run`]
    /// on the same inputs: the probe observes, it never perturbs.
    pub fn run_sited(&self, program: &Program, ctx: &WorkloadCtx, seed: u64) -> ExecStats {
        self.run_sited_with(program, ctx, seed, &mut MachineScratch::new())
    }

    /// [`Machine::run_sited`] reusing a [`MachineScratch`] arena.
    pub fn run_sited_with(
        &self,
        program: &Program,
        ctx: &WorkloadCtx,
        seed: u64,
        scratch: &mut MachineScratch,
    ) -> ExecStats {
        let mut probe = SiteStallProbe::new();
        let mut stats = self.run_loop(program, ctx, seed, &mut probe, scratch);
        stats.per_site = Some(probe.finish());
        stats
    }

    /// [`Machine::run`] driving execution events through `probe` (the
    /// observability seam; see [`crate::probe`]). Results are bit-identical
    /// regardless of the probe attached.
    pub fn run_probed(
        &self,
        program: &Program,
        ctx: &WorkloadCtx,
        seed: u64,
        probe: &mut dyn Probe,
    ) -> ExecStats {
        self.run_probed_with(program, ctx, seed, probe, &mut MachineScratch::new())
    }

    /// The run loop: [`Machine::run_probed`] with every per-run allocation
    /// drawn from (and returned to) `scratch`.
    pub fn run_probed_with(
        &self,
        program: &Program,
        ctx: &WorkloadCtx,
        seed: u64,
        probe: &mut dyn Probe,
        scratch: &mut MachineScratch,
    ) -> ExecStats {
        self.run_loop(program, ctx, seed, probe, scratch)
    }

    /// The run loop proper, generic over the probe so statically-known
    /// probes monomorphize (a [`NullProbe`] run carries zero observation
    /// overhead — no virtual dispatch per instruction).
    ///
    /// Scheduling is discrete-event: a [`CoreHeap`] keyed on `(clock, core)`
    /// always surfaces the core with the smallest local clock, so cross-core
    /// coherence interactions happen in global time order, and a stepped
    /// core whose clock is still minimal keeps running without touching the
    /// other cores at all.
    fn run_loop<P: Probe + ?Sized>(
        &self,
        program: &Program,
        ctx: &WorkloadCtx,
        seed: u64,
        probe: &mut P,
        scratch: &mut MachineScratch,
    ) -> ExecStats {
        assert!(
            program.threads.len() <= self.spec.cores * self.spec.smt as usize,
            "program has {} threads but machine exposes {} hardware contexts",
            program.threads.len(),
            self.spec.cores * self.spec.smt as usize
        );
        // Reject hostile contexts before any simulation: a NaN or negative
        // rate would otherwise poison clocks mid-run, failing an entire
        // campaign batch from deep inside the hot loop.
        if let Err(why) = ctx.validate() {
            panic!("rejected before simulation: {why}");
        }
        let mut root = SplitMix64::new(seed ^ 0x5DEE_CE66_D1CE_5EED);
        // Run-level noise factor: models scheduling/SMT/frequency jitter that
        // shifts a whole sample, the dominant term in unstable benchmarks.
        let run_noise = root.jitter(ctx.noise_amp);
        // SMT contention: when more threads run than physical cores, or the
        // machine time-slices SMT contexts, cores interfere. POWER7's 4-way
        // SMT adds extra jitter even for modest thread counts.
        let smt_noise = if self.spec.smt > 1 {
            root.jitter(ctx.noise_amp * 0.5)
        } else {
            1.0
        };

        let n = program.threads.len();
        let MachineScratch {
            cores,
            rngs,
            mem,
            heap,
        } = scratch;
        mem.clear();
        let mut counters = Counters::default();
        cores.truncate(n);
        for (id, core) in cores.iter_mut().enumerate() {
            core.reset(id, &self.spec);
        }
        for id in cores.len()..n {
            cores.push(CoreState::new(id, &self.spec));
        }
        rngs.clear();
        rngs.extend((0..n).map(|_| root.split()));
        // Stagger thread start times slightly, as a real scheduler would.
        // Each core lands in its own disjoint range [i*20, i*20+10], so
        // initial clocks never tie.
        for (i, core) in cores.iter_mut().enumerate() {
            core.clock = (i as f64) * 20.0 + rngs[i].next_f64() * 10.0;
        }

        // Interleave: always step the core with the smallest local clock so
        // cross-core coherence interactions happen in global time order.
        heap.clear();
        for (i, core) in cores.iter().enumerate() {
            if !program.threads[i].is_empty() {
                heap.push(core.clock, i);
            }
        }
        while let Some(idx) = heap.peek() {
            let core = &mut cores[idx];
            let thread = &program.threads[idx];
            let rng = &mut rngs[idx];
            // Step this core while it remains the globally-minimal one; the
            // common case (one straggler core, or a core far behind the
            // pack) never re-consults the other cores.
            loop {
                let instr = &thread[core.pc];
                probe.begin(idx, core.pc, instr);
                let before = core.clock;
                core.step_probed(instr, &self.spec, ctx, mem, rng, &mut counters, probe);
                probe.retire(idx, core.pc, core.clock - before, core.clock);
                core.pc += 1;
                if core.pc >= thread.len() {
                    heap.pop_root();
                    break;
                }
                heap.update_root(core.clock);
                if heap.peek() != Some(idx) {
                    break;
                }
            }
        }

        let mut sb_stall_cycles = 0.0;
        let mut sb_stalls = 0;
        for core in cores.iter() {
            sb_stall_cycles += core.sbuf.stall_cycles;
            sb_stalls += core.sbuf.stalls;
        }
        let max_cycles = cores.iter().map(|c| c.clock).fold(0.0_f64, f64::max);
        ExecStats {
            wall_ns: self.spec.ns(max_cycles) * run_noise * smt_noise,
            core_cycles: cores.iter().map(|c| c.clock).collect(),
            counters,
            sb_stall_cycles,
            sb_stalls,
            per_site: None,
        }
    }

    /// Convenience micro-harness: time a tight loop of `n` repetitions of
    /// `body` on a single core, returning mean nanoseconds per repetition.
    ///
    /// This is the "basic microbenchmarking" of §4.2.1 (e.g. measuring
    /// `sync` at 18.9 ns and `lwsync` at 6.1 ns) — and it demonstrates the
    /// limits the paper highlights: run it on `dmb ish` vs `dmb ishst` and
    /// you will see no difference, because the machine is otherwise idle.
    pub fn time_sequence_ns(&self, body: &[Instr], n: usize, seed: u64) -> f64 {
        let mut stream = Vec::with_capacity(body.len() * n);
        for _ in 0..n {
            stream.extend_from_slice(body);
        }
        let ctx = WorkloadCtx {
            name: "micro".to_string(),
            bp_pressure: 0.0,
            load_pressure: 0.0,
            l1_miss_rate: 0.0,
            dram_frac: 0.0,
            noise_amp: 0.0,
        };
        let stats = self.run(&Program::new(vec![stream]), &ctx, seed);
        stats.wall_ns / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{armv8_xgene1, power7};
    use crate::isa::{AccessOrd, FenceKind, Loc};

    fn store(line: u64) -> Instr {
        Instr::Store {
            loc: Loc::SharedRw(line),
            ord: AccessOrd::Plain,
        }
    }

    fn load(line: u64) -> Instr {
        Instr::Load {
            loc: Loc::SharedRw(line),
            ord: AccessOrd::Plain,
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let m = Machine::new(armv8_xgene1());
        let prog = Program::new(vec![
            vec![store(1), Instr::Fence(FenceKind::DmbIsh), load(2)],
            vec![store(2), Instr::Fence(FenceKind::DmbIsh), load(1)],
        ]);
        let ctx = WorkloadCtx::default();
        let a = m.run(&prog, &ctx, 99);
        let b = m.run(&prog, &ctx, 99);
        assert_eq!(a.wall_ns, b.wall_ns);
        assert_eq!(a.core_cycles, b.core_cycles);
    }

    #[test]
    fn different_seeds_vary_with_noise() {
        let m = Machine::new(armv8_xgene1());
        let prog = Program::new(vec![vec![load(1); 100]]);
        let ctx = WorkloadCtx {
            l1_miss_rate: 0.3,
            noise_amp: 0.02,
            ..WorkloadCtx::default()
        };
        let a = m.run(&prog, &ctx, 1);
        let b = m.run(&prog, &ctx, 2);
        assert_ne!(a.wall_ns, b.wall_ns);
    }

    #[test]
    fn rejects_too_many_threads() {
        let m = Machine::new(armv8_xgene1()); // 8 cores, no SMT
        let threads = vec![vec![Instr::Nop]; 9];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(&Program::new(threads), &WorkloadCtx::default(), 0)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn power7_smt_accepts_many_threads() {
        let m = Machine::new(power7()); // 12 cores x 4 SMT
        let threads = vec![vec![Instr::Nop]; 16];
        let stats = m.run(&Program::new(threads), &WorkloadCtx::default(), 0);
        assert_eq!(stats.core_cycles.len(), 16);
    }

    #[test]
    fn micro_timing_of_power_fences_matches_paper() {
        // §4.2.1: "Basic microbenchmarking of sync and lwsync determines
        // their execution times to be 6.1ns and 18.9ns respectively."
        let m = Machine::new(power7());
        let lw = m.time_sequence_ns(&[Instr::Fence(FenceKind::LwSync)], 2000, 1);
        let hw = m.time_sequence_ns(&[Instr::Fence(FenceKind::HwSync)], 2000, 1);
        assert!((lw - 6.1).abs() < 0.5, "lwsync micro {lw} ns");
        assert!((hw - 18.9).abs() < 1.0, "sync micro {hw} ns");
    }

    #[test]
    fn micro_timing_cannot_distinguish_dmb_variants() {
        let m = Machine::new(armv8_xgene1());
        let ish = m.time_sequence_ns(&[Instr::Fence(FenceKind::DmbIsh)], 2000, 1);
        let ishst = m.time_sequence_ns(&[Instr::Fence(FenceKind::DmbIshSt)], 2000, 1);
        let ishld = m.time_sequence_ns(&[Instr::Fence(FenceKind::DmbIshLd)], 2000, 1);
        assert!((ish - ishst).abs() / ish < 0.05, "{ish} vs {ishst}");
        assert!((ish - ishld).abs() / ish < 0.05, "{ish} vs {ishld}");
    }

    #[test]
    fn contended_line_slower_than_private() {
        let m = Machine::new(armv8_xgene1());
        let ctx = WorkloadCtx::default();
        // Paced ping-pong keeps both threads concurrently active so the
        // line genuinely bounces between caches.
        let paced = |line: u64, tid: u64| -> Vec<Instr> {
            (0..150)
                .flat_map(|i| {
                    vec![
                        Instr::Compute { cycles: 40 },
                        if (i + tid).is_multiple_of(2) {
                            store(line)
                        } else {
                            load(line)
                        },
                    ]
                })
                .collect()
        };
        let contended = Program::new(vec![paced(7, 0), paced(7, 1)]);
        let disjoint = Program::new(vec![paced(8, 0), paced(9, 1)]);
        let c = m.run(&contended, &ctx, 3);
        let d = m.run(&disjoint, &ctx, 3);
        assert!(
            c.wall_ns > d.wall_ns,
            "contention should cost: {} vs {}",
            c.wall_ns,
            d.wall_ns
        );
        assert!(c.counters.coherence_transfers > d.counters.coherence_transfers);
    }

    #[test]
    fn wall_time_is_max_core_time() {
        let m = Machine::new(armv8_xgene1());
        let prog = Program::new(vec![
            vec![Instr::Compute { cycles: 10_000 }],
            vec![Instr::Compute { cycles: 10 }],
        ]);
        let stats = m.run(&prog, &WorkloadCtx::default(), 0);
        let max_c = stats.core_cycles.iter().cloned().fold(0.0, f64::max);
        assert!((stats.wall_ns - m.spec().ns(max_c)).abs() < 1e-9);
    }

    #[test]
    fn program_len_counts_all_threads() {
        let p = Program::new(vec![vec![Instr::Nop; 3], vec![Instr::Nop; 2]]);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }

    #[test]
    fn workload_ctx_validation_names_the_offending_field() {
        let mut ctx = WorkloadCtx::default();
        assert!(ctx.validate().is_ok());
        ctx.noise_amp = f64::NAN;
        let err = ctx.validate().unwrap_err();
        assert!(err.contains("noise_amp"), "{err}");
        ctx.noise_amp = 0.0;
        ctx.l1_miss_rate = -0.5;
        let err = ctx.validate().unwrap_err();
        assert!(err.contains("l1_miss_rate"), "{err}");
        ctx.l1_miss_rate = f64::INFINITY;
        assert!(ctx.validate().is_err());
    }

    #[test]
    fn hostile_ctx_is_rejected_up_front_not_mid_run() {
        // A NaN noise amplitude used to detonate mid-batch at the scheduler's
        // `partial_cmp(..).expect("clocks are finite")`; now the run refuses
        // to start, naming the poisoned field.
        let m = Machine::new(armv8_xgene1());
        let prog = Program::new(vec![vec![load(1); 50], vec![store(1); 50]]);
        let ctx = WorkloadCtx {
            noise_amp: f64::NAN,
            ..WorkloadCtx::default()
        };
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.run(&prog, &ctx, 0)));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("rejected before simulation"), "{msg}");
        assert!(msg.contains("noise_amp"), "{msg}");
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_state() {
        // One scratch across dissimilar jobs — different thread counts,
        // shapes, architectures — must reproduce the allocate-fresh results
        // exactly, including stats populated from reused buffers.
        let arm = Machine::new(armv8_xgene1());
        let pow = Machine::new(power7());
        let progs = [
            Program::new(vec![vec![
                store(1),
                Instr::Fence(FenceKind::DmbIsh),
                load(2),
            ]]),
            Program::new(vec![
                vec![store(1); 40],
                vec![load(1); 40],
                vec![store(2), load(2), store(2), load(2)],
            ]),
            Program::new(vec![
                vec![Instr::Compute { cycles: 500 }],
                vec![load(9); 10],
            ]),
        ];
        let ctx = WorkloadCtx {
            l1_miss_rate: 0.2,
            noise_amp: 0.01,
            ..WorkloadCtx::default()
        };
        let mut scratch = MachineScratch::new();
        for round in 0..3 {
            for (i, prog) in progs.iter().enumerate() {
                for machine in [&arm, &pow] {
                    let seed = (round * 10 + i) as u64;
                    let fresh = machine.run(prog, &ctx, seed);
                    let reused = machine.run_with(prog, &ctx, seed, &mut scratch);
                    assert_eq!(fresh.wall_ns, reused.wall_ns);
                    assert_eq!(fresh.core_cycles, reused.core_cycles);
                    assert_eq!(fresh.sb_stall_cycles, reused.sb_stall_cycles);
                    assert_eq!(fresh.sb_stalls, reused.sb_stalls);
                    assert_eq!(fresh.counters, reused.counters);
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_for_sited_runs() {
        let m = Machine::new(armv8_xgene1());
        let prog = Program::new(vec![
            vec![store(1), Instr::Fence(FenceKind::DmbIsh), load(2)],
            vec![store(2), Instr::Fence(FenceKind::DmbIsh), load(1)],
        ]);
        let ctx = WorkloadCtx::default();
        let mut scratch = MachineScratch::new();
        // Warm the scratch with an unrelated job first.
        m.run_with(
            &Program::new(vec![vec![load(5); 30]; 4]),
            &ctx,
            1,
            &mut scratch,
        );
        let fresh = m.run_sited(&prog, &ctx, 42);
        let reused = m.run_sited_with(&prog, &ctx, 42, &mut scratch);
        assert_eq!(fresh.wall_ns, reused.wall_ns);
        assert_eq!(fresh.per_site, reused.per_site);
    }
}
