//! The shared memory system: a coherence directory over read-write shared
//! lines plus a probabilistic locality model for private and read-only data.
//!
//! Read-write shared lines ([`crate::isa::Loc::SharedRw`]) are tracked
//! exactly: the directory knows which core owns a line dirty and which cores
//! hold clean copies, so cross-core communication (the thing fencing
//! strategies exist to order) pays real transfer and invalidation latencies
//! that depend on the interleaving.
//!
//! Private and read-only lines do not generate coherence traffic; their hit
//! rates are a property of the *workload* (its working-set size and access
//! pattern), so they are sampled from the workload context's miss rates with
//! the run's seeded RNG.

use std::collections::HashMap;

use crate::arch::ArchSpec;
use crate::isa::Loc;
use crate::rng::SplitMix64;

/// Sharing state of one read-write line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LineState {
    /// Dirty in exactly one core's cache.
    Modified(usize),
    /// Clean copies in the given cores (bitmask over core ids).
    Shared(u64),
}

/// Outcome of a memory access, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Served from the local L1.
    L1Hit,
    /// Served from the shared last-level cache.
    LlcHit,
    /// Served from DRAM.
    Dram,
    /// Required a dirty-line transfer from another core.
    CoherenceTransfer,
}

/// The memory system shared by all cores of a [`crate::machine::Machine`].
#[derive(Debug)]
pub struct MemSys {
    directory: HashMap<u64, LineState>,
    /// Lines ever touched (first touch comes from DRAM, later from LLC).
    warmed: HashMap<u64, ()>,
}

/// Key used to disambiguate the address spaces of the three [`Loc`] classes
/// (and, for private lines, of each core).
pub fn line_key(core: usize, loc: Loc) -> u64 {
    match loc {
        // Private lines are per-core: fold the core id into the key.
        Loc::Private(l) => 0x1000_0000_0000_0000 | ((core as u64) << 48) | l,
        Loc::SharedRo(l) => 0x2000_0000_0000_0000 | l,
        Loc::SharedRw(l) => 0x3000_0000_0000_0000 | l,
    }
}

impl MemSys {
    /// A cold memory system.
    pub fn new() -> Self {
        MemSys {
            directory: HashMap::new(),
            warmed: HashMap::new(),
        }
    }

    /// Cycle cost and classification of a **load** by `core` from `loc`.
    ///
    /// `miss_rate`/`dram_frac` describe the workload's locality for
    /// non-coherent data; `rng` supplies the seeded randomness.
    pub fn load(
        &mut self,
        core: usize,
        loc: Loc,
        spec: &ArchSpec,
        miss_rate: f64,
        dram_frac: f64,
        rng: &mut SplitMix64,
    ) -> (f64, AccessOutcome) {
        match loc {
            Loc::Private(_) | Loc::SharedRo(_) => {
                if rng.chance(miss_rate) {
                    if rng.chance(dram_frac) {
                        (spec.dram, AccessOutcome::Dram)
                    } else {
                        (spec.llc_hit, AccessOutcome::LlcHit)
                    }
                } else {
                    (spec.l1_hit, AccessOutcome::L1Hit)
                }
            }
            Loc::SharedRw(_) => {
                let key = line_key(core, loc);
                let first_touch = self.warmed.insert(key, ()).is_none();
                match self.directory.get_mut(&key) {
                    Some(LineState::Modified(owner)) => {
                        if *owner == core {
                            (spec.l1_hit, AccessOutcome::L1Hit)
                        } else {
                            // Dirty remote: transfer, both end up sharing.
                            let prev = *owner;
                            self.directory
                                .insert(key, LineState::Shared((1 << prev) | (1 << core)));
                            (spec.coherence_transfer, AccessOutcome::CoherenceTransfer)
                        }
                    }
                    Some(LineState::Shared(mask)) => {
                        if *mask & (1 << core) != 0 {
                            (spec.l1_hit, AccessOutcome::L1Hit)
                        } else {
                            *mask |= 1 << core;
                            (spec.llc_hit, AccessOutcome::LlcHit)
                        }
                    }
                    None => {
                        self.directory.insert(key, LineState::Shared(1 << core));
                        if first_touch {
                            (spec.dram, AccessOutcome::Dram)
                        } else {
                            (spec.llc_hit, AccessOutcome::LlcHit)
                        }
                    }
                }
            }
        }
    }

    /// Cycle cost of **draining a store** by `core` to `loc` out of the store
    /// buffer (the store itself retires into the buffer for free; this is
    /// the background cost the buffer model charges).
    pub fn store_drain(&mut self, core: usize, loc: Loc, spec: &ArchSpec) -> f64 {
        match loc {
            Loc::Private(_) => spec.sb_drain_local,
            // Writing read-only-classified data is allowed but behaves like
            // shared-rw for the drain (e.g. lazy init of interned data).
            Loc::SharedRo(_) | Loc::SharedRw(_) => {
                let key = line_key(core, loc);
                self.warmed.insert(key, ());
                match self.directory.insert(key, LineState::Modified(core)) {
                    Some(LineState::Modified(owner)) if owner == core => spec.sb_drain_local,
                    Some(LineState::Shared(mask)) if mask == (1 << core) => {
                        // Sole sharer upgrading to exclusive: cheap.
                        spec.sb_drain_local
                    }
                    Some(_) => spec.sb_drain_remote + spec.invalidate,
                    None => spec.sb_drain_remote,
                }
            }
        }
    }

    /// Cycle cost for `core` to gain exclusive ownership for an atomic
    /// read-modify-write.
    pub fn rmw(&mut self, core: usize, loc: Loc, spec: &ArchSpec) -> (f64, AccessOutcome) {
        let key = line_key(core, loc);
        self.warmed.insert(key, ());
        match self.directory.insert(key, LineState::Modified(core)) {
            Some(LineState::Modified(owner)) if owner == core => {
                (spec.l1_hit, AccessOutcome::L1Hit)
            }
            Some(_) => (spec.coherence_transfer, AccessOutcome::CoherenceTransfer),
            None => (spec.llc_hit, AccessOutcome::LlcHit),
        }
    }
}

impl Default for MemSys {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::armv8_xgene1;

    fn rng() -> SplitMix64 {
        SplitMix64::new(1)
    }

    #[test]
    fn private_load_hits_l1_when_miss_rate_zero() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        let (c, o) = m.load(0, Loc::Private(1), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o, AccessOutcome::L1Hit);
        assert_eq!(c, spec.l1_hit);
    }

    #[test]
    fn cold_shared_load_comes_from_dram() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        let (c, o) = m.load(0, Loc::SharedRw(5), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o, AccessOutcome::Dram);
        assert_eq!(c, spec.dram);
        // Second load from the same core now hits.
        let (c2, o2) = m.load(0, Loc::SharedRw(5), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o2, AccessOutcome::L1Hit);
        assert_eq!(c2, spec.l1_hit);
    }

    #[test]
    fn dirty_remote_load_transfers() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        // Core 0 writes the line (drain makes it Modified(0)).
        m.store_drain(0, Loc::SharedRw(9), &spec);
        // Core 1 reading pays a coherence transfer.
        let (c, o) = m.load(1, Loc::SharedRw(9), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o, AccessOutcome::CoherenceTransfer);
        assert_eq!(c, spec.coherence_transfer);
        // Both now share it: core 0 reads hit.
        let (_, o0) = m.load(0, Loc::SharedRw(9), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o0, AccessOutcome::L1Hit);
    }

    #[test]
    fn store_to_owned_line_is_cheap() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        let first = m.store_drain(0, Loc::SharedRw(3), &spec);
        let second = m.store_drain(0, Loc::SharedRw(3), &spec);
        assert!(first > second, "first {first} second {second}");
        assert_eq!(second, spec.sb_drain_local);
    }

    #[test]
    fn store_to_shared_line_invalidates() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        m.load(0, Loc::SharedRw(4), &spec, 0.0, 0.0, &mut rng());
        m.load(1, Loc::SharedRw(4), &spec, 0.0, 0.0, &mut rng());
        // Core 1 stores: other copies must die.
        let c = m.store_drain(1, Loc::SharedRw(4), &spec);
        assert_eq!(c, spec.sb_drain_remote + spec.invalidate);
    }

    #[test]
    fn rmw_ping_pong_costs_transfers() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        let (a, _) = m.rmw(0, Loc::SharedRw(7), &spec);
        let (b, ob) = m.rmw(1, Loc::SharedRw(7), &spec);
        let (c, oc) = m.rmw(0, Loc::SharedRw(7), &spec);
        assert!(a <= b && b == c);
        assert_eq!(ob, AccessOutcome::CoherenceTransfer);
        assert_eq!(oc, AccessOutcome::CoherenceTransfer);
        // Repeated rmw by the same core is cheap.
        let (d, od) = m.rmw(0, Loc::SharedRw(7), &spec);
        assert_eq!(od, AccessOutcome::L1Hit);
        assert!(d < c);
    }

    #[test]
    fn private_lines_are_per_core() {
        assert_ne!(line_key(0, Loc::Private(1)), line_key(1, Loc::Private(1)));
        assert_eq!(line_key(0, Loc::SharedRw(1)), line_key(5, Loc::SharedRw(1)));
    }
}
