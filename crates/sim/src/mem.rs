//! The shared memory system: a coherence directory over read-write shared
//! lines plus a probabilistic locality model for private and read-only data.
//!
//! Read-write shared lines ([`crate::isa::Loc::SharedRw`]) are tracked
//! exactly: the directory knows which core owns a line dirty and which cores
//! hold clean copies, so cross-core communication (the thing fencing
//! strategies exist to order) pays real transfer and invalidation latencies
//! that depend on the interleaving.
//!
//! Private and read-only lines do not generate coherence traffic; their hit
//! rates are a property of the *workload* (its working-set size and access
//! pattern), so they are sampled from the workload context's miss rates with
//! the run's seeded RNG.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::arch::ArchSpec;
use crate::isa::Loc;
use crate::rng::SplitMix64;

/// A fast, deterministic hasher for 64-bit line keys: the SplitMix64
/// finalizer. Line-map lookups happen on nearly every memory instruction,
/// and the default SipHash (keyed, DoS-resistant) is wasted on keys the
/// simulator itself constructs. No map is ever iterated, so the hash
/// function cannot influence results — only lookup speed.
#[derive(Debug, Default)]
pub struct LineKeyHasher(u64);

impl Hasher for LineKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write_u64(&mut self, key: u64) {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_isize(&mut self, i: isize) {
        // Derived `Hash` for fieldless enums (e.g. `FenceKind`) hashes the
        // discriminant as an `isize`; route it through the word mixer.
        self.write_u64(i as u64);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Line keys always hash through `write_u64`; keep a sound fallback
        // (FNV-1a) for any other key type.
        let mut h = self.0 ^ 0xCBF2_9CE4_8422_2325;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

type LineMap<V> = HashMap<u64, V, BuildHasherDefault<LineKeyHasher>>;

/// Sharing state of one read-write line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LineState {
    /// Dirty in exactly one core's cache.
    Modified(usize),
    /// Clean copies in the given cores (bitmask over core ids).
    Shared(u64),
}

/// Outcome of a memory access, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Served from the local L1.
    L1Hit,
    /// Served from the shared last-level cache.
    LlcHit,
    /// Served from DRAM.
    Dram,
    /// Required a dirty-line transfer from another core.
    CoherenceTransfer,
}

/// The memory system shared by all cores of a [`crate::machine::Machine`].
///
/// The directory doubles as the warmth record: every tracked-line operation
/// inserts into it and nothing ever removes, so "line absent from the
/// directory" is exactly "never touched" and the first access to a line is
/// the one that comes from DRAM.
#[derive(Debug)]
pub struct MemSys {
    directory: LineMap<LineState>,
}

/// Key used to disambiguate the address spaces of the three [`Loc`] classes
/// (and, for private lines, of each core).
pub fn line_key(core: usize, loc: Loc) -> u64 {
    match loc {
        // Private lines are per-core: fold the core id into the key.
        Loc::Private(l) => 0x1000_0000_0000_0000 | ((core as u64) << 48) | l,
        Loc::SharedRo(l) => 0x2000_0000_0000_0000 | l,
        Loc::SharedRw(l) => 0x3000_0000_0000_0000 | l,
    }
}

impl MemSys {
    /// A cold memory system.
    pub fn new() -> Self {
        MemSys {
            directory: LineMap::default(),
        }
    }

    /// Forget all line state, keeping the map allocations: equivalent to a
    /// cold [`MemSys::new`] for the next run.
    pub fn clear(&mut self) {
        self.directory.clear();
    }

    /// Cycle cost and classification of a **load** by `core` from `loc`.
    ///
    /// `miss_rate`/`dram_frac` describe the workload's locality for
    /// non-coherent data; `rng` supplies the seeded randomness.
    pub fn load(
        &mut self,
        core: usize,
        loc: Loc,
        spec: &ArchSpec,
        miss_rate: f64,
        dram_frac: f64,
        rng: &mut SplitMix64,
    ) -> (f64, AccessOutcome) {
        match loc {
            Loc::Private(_) | Loc::SharedRo(_) => {
                if rng.chance(miss_rate) {
                    if rng.chance(dram_frac) {
                        (spec.dram, AccessOutcome::Dram)
                    } else {
                        (spec.llc_hit, AccessOutcome::LlcHit)
                    }
                } else {
                    (spec.l1_hit, AccessOutcome::L1Hit)
                }
            }
            Loc::SharedRw(_) => {
                let key = line_key(core, loc);
                match self.directory.get_mut(&key) {
                    Some(LineState::Modified(owner)) => {
                        if *owner == core {
                            (spec.l1_hit, AccessOutcome::L1Hit)
                        } else {
                            // Dirty remote: transfer, both end up sharing.
                            let prev = *owner;
                            self.directory
                                .insert(key, LineState::Shared((1 << prev) | (1 << core)));
                            (spec.coherence_transfer, AccessOutcome::CoherenceTransfer)
                        }
                    }
                    Some(LineState::Shared(mask)) => {
                        if *mask & (1 << core) != 0 {
                            (spec.l1_hit, AccessOutcome::L1Hit)
                        } else {
                            *mask |= 1 << core;
                            (spec.llc_hit, AccessOutcome::LlcHit)
                        }
                    }
                    None => {
                        // Absent from the directory means never touched by
                        // any operation: this is the line's first access.
                        self.directory.insert(key, LineState::Shared(1 << core));
                        (spec.dram, AccessOutcome::Dram)
                    }
                }
            }
        }
    }

    /// Cycle cost of **draining a store** by `core` to `loc` out of the store
    /// buffer (the store itself retires into the buffer for free; this is
    /// the background cost the buffer model charges).
    pub fn store_drain(&mut self, core: usize, loc: Loc, spec: &ArchSpec) -> f64 {
        match loc {
            Loc::Private(_) => spec.sb_drain_local,
            // Writing read-only-classified data is allowed but behaves like
            // shared-rw for the drain (e.g. lazy init of interned data).
            Loc::SharedRo(_) | Loc::SharedRw(_) => {
                let key = line_key(core, loc);
                match self.directory.insert(key, LineState::Modified(core)) {
                    Some(LineState::Modified(owner)) if owner == core => spec.sb_drain_local,
                    Some(LineState::Shared(mask)) if mask == (1 << core) => {
                        // Sole sharer upgrading to exclusive: cheap.
                        spec.sb_drain_local
                    }
                    Some(_) => spec.sb_drain_remote + spec.invalidate,
                    None => spec.sb_drain_remote,
                }
            }
        }
    }

    /// Cycle cost for `core` to gain exclusive ownership for an atomic
    /// read-modify-write.
    pub fn rmw(&mut self, core: usize, loc: Loc, spec: &ArchSpec) -> (f64, AccessOutcome) {
        let key = line_key(core, loc);
        match self.directory.insert(key, LineState::Modified(core)) {
            Some(LineState::Modified(owner)) if owner == core => {
                (spec.l1_hit, AccessOutcome::L1Hit)
            }
            Some(_) => (spec.coherence_transfer, AccessOutcome::CoherenceTransfer),
            None => (spec.llc_hit, AccessOutcome::LlcHit),
        }
    }
}

impl Default for MemSys {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::armv8_xgene1;

    fn rng() -> SplitMix64 {
        SplitMix64::new(1)
    }

    #[test]
    fn private_load_hits_l1_when_miss_rate_zero() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        let (c, o) = m.load(0, Loc::Private(1), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o, AccessOutcome::L1Hit);
        assert_eq!(c, spec.l1_hit);
    }

    #[test]
    fn cold_shared_load_comes_from_dram() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        let (c, o) = m.load(0, Loc::SharedRw(5), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o, AccessOutcome::Dram);
        assert_eq!(c, spec.dram);
        // Second load from the same core now hits.
        let (c2, o2) = m.load(0, Loc::SharedRw(5), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o2, AccessOutcome::L1Hit);
        assert_eq!(c2, spec.l1_hit);
    }

    #[test]
    fn dirty_remote_load_transfers() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        // Core 0 writes the line (drain makes it Modified(0)).
        m.store_drain(0, Loc::SharedRw(9), &spec);
        // Core 1 reading pays a coherence transfer.
        let (c, o) = m.load(1, Loc::SharedRw(9), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o, AccessOutcome::CoherenceTransfer);
        assert_eq!(c, spec.coherence_transfer);
        // Both now share it: core 0 reads hit.
        let (_, o0) = m.load(0, Loc::SharedRw(9), &spec, 0.0, 0.0, &mut rng());
        assert_eq!(o0, AccessOutcome::L1Hit);
    }

    #[test]
    fn store_to_owned_line_is_cheap() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        let first = m.store_drain(0, Loc::SharedRw(3), &spec);
        let second = m.store_drain(0, Loc::SharedRw(3), &spec);
        assert!(first > second, "first {first} second {second}");
        assert_eq!(second, spec.sb_drain_local);
    }

    #[test]
    fn store_to_shared_line_invalidates() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        m.load(0, Loc::SharedRw(4), &spec, 0.0, 0.0, &mut rng());
        m.load(1, Loc::SharedRw(4), &spec, 0.0, 0.0, &mut rng());
        // Core 1 stores: other copies must die.
        let c = m.store_drain(1, Loc::SharedRw(4), &spec);
        assert_eq!(c, spec.sb_drain_remote + spec.invalidate);
    }

    #[test]
    fn rmw_ping_pong_costs_transfers() {
        let spec = armv8_xgene1();
        let mut m = MemSys::new();
        let (a, _) = m.rmw(0, Loc::SharedRw(7), &spec);
        let (b, ob) = m.rmw(1, Loc::SharedRw(7), &spec);
        let (c, oc) = m.rmw(0, Loc::SharedRw(7), &spec);
        assert!(a <= b && b == c);
        assert_eq!(ob, AccessOutcome::CoherenceTransfer);
        assert_eq!(oc, AccessOutcome::CoherenceTransfer);
        // Repeated rmw by the same core is cheap.
        let (d, od) = m.rmw(0, Loc::SharedRw(7), &spec);
        assert_eq!(od, AccessOutcome::L1Hit);
        assert!(d < c);
    }

    #[test]
    fn private_lines_are_per_core() {
        assert_ne!(line_key(0, Loc::Private(1)), line_key(1, Loc::Private(1)));
        assert_eq!(line_key(0, Loc::SharedRw(1)), line_key(5, Loc::SharedRw(1)));
    }
}
