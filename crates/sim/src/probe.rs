//! The observation seam of the simulator: typed execution events.
//!
//! A [`Probe`] receives the executor's structured events — instruction
//! begin/retire, fence stalls, store-buffer capacity stalls, memory-access
//! outcomes — tagged with the *site id* `(thread, stream index)` of the
//! instruction that caused them. Every event reports values the simulator
//! has already computed; a probe can only observe, never perturb, so a run
//! driven through any probe produces bit-identical [`ExecStats`] to a run
//! without one ([`NullProbe`], the default, discards everything).
//!
//! [`SiteStallProbe`] is the in-crate collector that folds the event stream
//! into the optional per-site stall map of [`ExecStats`]
//! ([`crate::stats::SiteStall`]) — the ground truth the `wmm-obs` crate
//! builds profiles, flamegraphs and campaign diffs on.
//!
//! [`ExecStats`]: crate::stats::ExecStats

use crate::isa::{FenceKind, Instr};
use crate::mem::AccessOutcome;
use crate::stats::SiteStall;

/// Receiver of the simulator's execution events.
///
/// All methods default to no-ops so probes implement only what they need.
/// Events between a [`Probe::begin`] and the matching [`Probe::retire`]
/// belong to that instruction's site; `begin`/`retire` always come in
/// non-nested pairs, in the machine's deterministic interleave order.
pub trait Probe {
    /// An instruction at `(thread, index)` is about to execute.
    fn begin(&mut self, thread: usize, index: usize, instr: &Instr) {
        let _ = (thread, index, instr);
    }

    /// A fence of `kind` retired after stalling for `cycles` (0 for the
    /// free compiler barrier).
    fn fence_retired(&mut self, kind: FenceKind, cycles: f64) {
        let _ = (kind, cycles);
    }

    /// The store buffer was at capacity and stalled the core for `cycles`.
    fn sb_stall(&mut self, cycles: f64) {
        let _ = cycles;
    }

    /// A memory access resolved as `outcome`, exposing `cycles` on the
    /// core's critical path (after out-of-order overlap).
    fn access(&mut self, outcome: AccessOutcome, cycles: f64) {
        let _ = (outcome, cycles);
    }

    /// The instruction begun at `(thread, index)` retired, having advanced
    /// the core's clock by `cycles` to `now`.
    fn retire(&mut self, thread: usize, index: usize, cycles: f64, now: f64) {
        let _ = (thread, index, cycles, now);
    }
}

/// The default probe: discards every event. `Machine::run` drives the
/// executor through this, so the disabled-observability path is the same
/// code path as the enabled one — there is nothing to keep in sync.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Folds the event stream into one [`SiteStall`] record per executed
/// `(thread, index)` site — the collector behind `Machine::run_sited`.
///
/// Each site executes exactly once per run (per-thread program counters
/// only advance), so the fold is a plain append; [`SiteStallProbe::finish`]
/// sorts by `(thread, index)` for a canonical order.
#[derive(Debug, Default)]
pub struct SiteStallProbe {
    current: Option<SiteStall>,
    sites: Vec<SiteStall>,
}

impl SiteStallProbe {
    /// A fresh collector.
    pub fn new() -> Self {
        SiteStallProbe::default()
    }

    /// The collected per-site records, sorted by `(thread, index)`.
    pub fn finish(mut self) -> Vec<SiteStall> {
        self.sites.sort_by_key(|s| (s.thread, s.index));
        self.sites
    }
}

impl Probe for SiteStallProbe {
    fn begin(&mut self, thread: usize, index: usize, _instr: &Instr) {
        self.current = Some(SiteStall {
            thread: thread as u32,
            index: index as u32,
            fence: None,
            fences: 0,
            fence_cycles: 0.0,
            sb_stall_cycles: 0.0,
            mem_cycles: 0.0,
            total_cycles: 0.0,
        });
    }

    fn fence_retired(&mut self, kind: FenceKind, cycles: f64) {
        if let Some(site) = &mut self.current {
            site.fence = Some(kind);
            site.fences += 1;
            site.fence_cycles += cycles;
        }
    }

    fn sb_stall(&mut self, cycles: f64) {
        if let Some(site) = &mut self.current {
            site.sb_stall_cycles += cycles;
        }
    }

    fn access(&mut self, _outcome: AccessOutcome, cycles: f64) {
        if let Some(site) = &mut self.current {
            site.mem_cycles += cycles;
        }
    }

    fn retire(&mut self, _thread: usize, _index: usize, cycles: f64, _now: f64) {
        if let Some(mut site) = self.current.take() {
            site.total_cycles = cycles;
            self.sites.push(site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_probe_folds_one_record_per_site() {
        let mut p = SiteStallProbe::new();
        p.begin(1, 0, &Instr::Alu);
        p.retire(1, 0, 0.25, 10.0);
        p.begin(0, 0, &Instr::Fence(FenceKind::DmbIsh));
        p.fence_retired(FenceKind::DmbIsh, 12.0);
        p.retire(0, 0, 12.0, 22.0);
        let sites = p.finish();
        assert_eq!(sites.len(), 2);
        // Canonical order: sorted by (thread, index), not arrival order.
        assert_eq!((sites[0].thread, sites[0].index), (0, 0));
        assert_eq!(sites[0].fence, Some(FenceKind::DmbIsh));
        assert_eq!(sites[0].fences, 1);
        assert_eq!(sites[0].fence_cycles, 12.0);
        assert_eq!(sites[1].total_cycles, 0.25);
        assert_eq!(sites[1].fence, None);
    }

    #[test]
    fn events_outside_a_site_are_ignored() {
        let mut p = SiteStallProbe::new();
        p.sb_stall(5.0);
        p.fence_retired(FenceKind::Isb, 1.0);
        assert!(p.finish().is_empty());
    }
}
