//! A tiny, fully deterministic pseudo-random number generator.
//!
//! We implement SplitMix64 ourselves rather than depending on an external RNG
//! so that simulation results are bit-for-bit stable across dependency
//! upgrades — reproducibility of every figure is a deliverable, and a silent
//! stream change in a third-party crate would invalidate recorded results.

/// SplitMix64: a fast, high-quality 64-bit generator with a one-word state.
///
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014). Passes BigCrush when used as a stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Every seed gives an independent,
    /// full-period stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the bounds used here and determinism is what matters.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Multiplicative jitter uniform in `[1 - amp, 1 + amp]`.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        1.0 + amp * (2.0 * self.next_f64() - 1.0)
    }

    /// Derive an independent child generator (splitting).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let j = r.jitter(0.05);
            assert!((0.95..=1.05).contains(&j));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn split_streams_independent() {
        let mut parent = SplitMix64::new(1234);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
