//! The per-core store buffer.
//!
//! Stores retire into a bounded FIFO and drain to the memory system in the
//! background; the cost of draining each entry depends on whether the line is
//! already exclusively owned. Fences that must wait for visibility pay the
//! *residual* drain time, which is what makes their cost context-dependent:
//! in a tight microbenchmark loop the buffer is empty and every full fence
//! costs its base latency, while in a store-heavy macrobenchmark the same
//! fence waits for the buffer to empty. This is the central mechanism behind
//! the paper's micro/macro divergences.

use std::collections::VecDeque;

/// One buffered store: the line key it writes and the absolute time (cycles)
/// at which its drain completes.
#[derive(Debug, Clone, Copy)]
struct Entry {
    line_key: u64,
    completes: f64,
}

/// A bounded FIFO store buffer with background drain.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: VecDeque<Entry>,
    capacity: usize,
    /// Completion time of the most recently enqueued entry (the drain point
    /// for a full fence). Monotonically non-decreasing.
    back_completes: f64,
    /// Cumulative cycles lost to capacity stalls, for statistics.
    pub stall_cycles: f64,
    /// Number of capacity stalls.
    pub stalls: u64,
}

impl StoreBuffer {
    /// An empty buffer with the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer needs at least one entry");
        StoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            back_completes: 0.0,
            stall_cycles: 0.0,
            stalls: 0,
        }
    }

    /// Empty the buffer and zero its statistics, keeping the backing
    /// allocation: equivalent to `StoreBuffer::new(capacity)`.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "store buffer needs at least one entry");
        self.entries.clear();
        self.capacity = capacity;
        self.back_completes = 0.0;
        self.stall_cycles = 0.0;
        self.stalls = 0;
    }

    /// Drop entries whose drain completed at or before `now`.
    pub fn expire(&mut self, now: f64) {
        while let Some(front) = self.entries.front() {
            if front.completes <= now {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of entries still draining at `now`.
    pub fn occupancy(&mut self, now: f64) -> usize {
        self.expire(now);
        self.entries.len()
    }

    /// Enqueue a store at time `now` whose drain takes `drain_cycles` once it
    /// reaches the head of coherence order. Returns the new current time: if
    /// the buffer was full, the core stalls until the oldest entry drains.
    ///
    /// FIFO order is preserved: a store's completion time is never earlier
    /// than its predecessor's (total store order per core — this is also what
    /// makes `dmb ishst` nearly free when the buffer is draining anyway).
    pub fn push(&mut self, now: f64, line_key: u64, drain_cycles: f64) -> f64 {
        self.expire(now);
        let mut now = now;
        if self.entries.len() >= self.capacity {
            // Stall until the head completes.
            let head = self.entries.front().expect("capacity > 0").completes;
            debug_assert!(head > now);
            self.stall_cycles += head - now;
            self.stalls += 1;
            now = head;
            self.expire(now);
        }
        let start = self.back_completes.max(now);
        let completes = start + drain_cycles;
        self.back_completes = completes;
        self.entries.push_back(Entry {
            line_key,
            completes,
        });
        now
    }

    /// Residual cycles until the buffer is fully drained, as seen at `now`.
    /// Zero when empty — the microbenchmark case.
    pub fn pending_wait(&mut self, now: f64) -> f64 {
        self.expire(now);
        if self.entries.is_empty() {
            0.0
        } else {
            (self.back_completes - now).max(0.0)
        }
    }

    /// Whether a load from `line_key` can be satisfied by forwarding from the
    /// buffer (a younger store to the same line is still buffered).
    pub fn forwards(&mut self, now: f64, line_key: u64) -> bool {
        self.expire(now);
        self.entries.iter().any(|e| e.line_key == line_key)
    }

    /// Drain everything by `now` (used at simulated context switches).
    pub fn flush(&mut self, now: f64) -> f64 {
        let wait = self.pending_wait(now);
        self.entries.clear();
        self.back_completes = self.back_completes.max(now + wait);
        now + wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_has_no_wait() {
        let mut sb = StoreBuffer::new(4);
        assert_eq!(sb.pending_wait(0.0), 0.0);
        assert_eq!(sb.occupancy(0.0), 0);
    }

    #[test]
    fn drain_times_are_fifo() {
        let mut sb = StoreBuffer::new(8);
        sb.push(0.0, 1, 10.0);
        sb.push(0.0, 2, 5.0);
        // Second store completes after the first despite a shorter drain.
        assert_eq!(sb.pending_wait(0.0), 15.0);
        assert_eq!(sb.occupancy(12.0), 1);
        assert_eq!(sb.occupancy(15.0), 0);
    }

    #[test]
    fn capacity_stall_advances_time() {
        let mut sb = StoreBuffer::new(2);
        sb.push(0.0, 1, 10.0); // completes 10
        sb.push(0.0, 2, 10.0); // completes 20
        let t = sb.push(0.0, 3, 10.0); // must wait for entry 1
        assert_eq!(t, 10.0);
        assert_eq!(sb.stalls, 1);
        assert_eq!(sb.stall_cycles, 10.0);
    }

    #[test]
    fn forwarding_sees_buffered_lines() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0.0, 42, 50.0);
        assert!(sb.forwards(1.0, 42));
        assert!(!sb.forwards(1.0, 43));
        // After the drain completes the line is no longer forwarded.
        assert!(!sb.forwards(51.0, 42));
    }

    #[test]
    fn pending_wait_decreases_with_time() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0.0, 1, 30.0);
        assert_eq!(sb.pending_wait(0.0), 30.0);
        assert_eq!(sb.pending_wait(10.0), 20.0);
        assert_eq!(sb.pending_wait(40.0), 0.0);
    }

    #[test]
    fn flush_empties_buffer() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0.0, 1, 25.0);
        let t = sb.flush(0.0);
        assert_eq!(t, 25.0);
        assert_eq!(sb.occupancy(t), 0);
    }
}
