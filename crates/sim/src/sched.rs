//! The run-loop scheduler: an index min-heap over core clocks.
//!
//! `Machine::run_probed` must always step the core with the smallest local
//! clock so cross-core coherence interactions happen in global time order.
//! The original implementation re-scanned every live core per retired
//! instruction (O(live) `min_by`); this heap makes each scheduling decision
//! O(log live), and — because a stepped core's clock only ever increases —
//! each decision is a single sift-down of the root rather than a rebuild.
//!
//! Ordering is by `(clock, core index)` under [`f64::total_cmp`]: a total
//! order with no panicking `partial_cmp` path, and a deterministic
//! lowest-index tie-break. Initial core clocks are staggered into disjoint
//! per-core ranges (`i*20 .. i*20+10`), so ties can only arise from mid-run
//! coincidences; the golden-trace tests in `tests/golden_trace.rs` pin the
//! resulting interleavings against the pre-heap scheduler.

/// A binary min-heap of core indices keyed by their clocks.
///
/// The key of the root entry is allowed to go stale while its core is being
/// stepped; callers restore the heap property with [`CoreHeap::update_root`]
/// (clock advanced) or [`CoreHeap::pop_root`] (thread finished) before the
/// next scheduling decision.
#[derive(Debug, Default)]
pub struct CoreHeap {
    /// `(clock, core index)` entries in binary-heap order.
    heap: Vec<(f64, u32)>,
}

/// Min-order: earlier clock first, lower core index on equal clocks.
/// `total_cmp` gives a full order even on non-finite clocks, so a poisoned
/// clock degrades scheduling order instead of panicking the whole campaign.
fn before(a: (f64, u32), b: (f64, u32)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

impl CoreHeap {
    /// An empty heap.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of live cores in the heap.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no cores remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert a core with its current clock.
    pub fn push(&mut self, clock: f64, idx: usize) {
        self.heap.push((clock, idx as u32));
        self.sift_up(self.heap.len() - 1);
    }

    /// The core with the smallest `(clock, index)` key, if any.
    #[must_use]
    pub fn peek(&self) -> Option<usize> {
        self.heap.first().map(|&(_, idx)| idx as usize)
    }

    /// Re-key the root with its core's advanced clock and restore the heap
    /// property (a single sift-down: clocks only increase).
    pub fn update_root(&mut self, clock: f64) {
        debug_assert!(!self.heap.is_empty(), "update_root on empty heap");
        self.heap[0].0 = clock;
        self.sift_down(0);
    }

    /// Remove the root (its thread retired its last instruction).
    pub fn pop_root(&mut self) {
        debug_assert!(!self.heap.is_empty(), "pop_root on empty heap");
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if before(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let mut least = i;
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            if left < n && before(self.heap[left], self.heap[least]) {
                least = left;
            }
            if right < n && before(self.heap[right], self.heap[least]) {
                least = right;
            }
            if least == i {
                break;
            }
            self.heap.swap(i, least);
            i = least;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    /// Drain via peek/update-with-huge-clock to read out heap order without
    /// a dedicated pop-min API.
    fn drain(h: &mut CoreHeap) -> Vec<usize> {
        let mut order = vec![];
        while let Some(idx) = h.peek() {
            order.push(idx);
            h.pop_root();
        }
        order
    }

    #[test]
    fn drains_in_clock_order() {
        let mut h = CoreHeap::new();
        for (i, c) in [37.5, 2.0, 19.0, 0.5, 44.0, 3.25].iter().enumerate() {
            h.push(*c, i);
        }
        assert_eq!(drain(&mut h), vec![3, 1, 5, 2, 0, 4]);
    }

    #[test]
    fn equal_clocks_break_ties_by_lowest_index() {
        let mut h = CoreHeap::new();
        for i in [4, 2, 0, 3, 1] {
            h.push(10.0, i);
        }
        assert_eq!(drain(&mut h), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn update_root_reschedules_the_stepped_core() {
        let mut h = CoreHeap::new();
        h.push(1.0, 0);
        h.push(5.0, 1);
        h.push(9.0, 2);
        assert_eq!(h.peek(), Some(0));
        h.update_root(6.0); // core 0 stepped past core 1
        assert_eq!(h.peek(), Some(1));
        h.update_root(6.0); // equal clocks: lower index wins
        assert_eq!(h.peek(), Some(0));
    }

    #[test]
    fn non_finite_clocks_do_not_panic() {
        // total_cmp sorts NaN after +inf; a poisoned clock starves its core
        // instead of aborting the campaign.
        let mut h = CoreHeap::new();
        h.push(f64::NAN, 0);
        h.push(1.0, 1);
        h.push(f64::INFINITY, 2);
        assert_eq!(drain(&mut h), vec![1, 2, 0]);
    }

    #[test]
    fn matches_sorted_order_on_random_clocks() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        for round in 0..50 {
            let n = 1 + (rng.next_u64() % 48) as usize;
            let clocks: Vec<f64> = (0..n).map(|_| rng.next_f64() * 1e4).collect();
            let mut h = CoreHeap::new();
            for (i, &c) in clocks.iter().enumerate() {
                h.push(c, i);
            }
            let mut expect: Vec<usize> = (0..n).collect();
            expect.sort_by(|&a, &b| clocks[a].total_cmp(&clocks[b]).then(a.cmp(&b)));
            assert_eq!(drain(&mut h), expect, "round {round}");
        }
    }

    #[test]
    fn clear_keeps_reusing_the_allocation() {
        let mut h = CoreHeap::new();
        for i in 0..16 {
            h.push(i as f64, i);
        }
        h.clear();
        assert!(h.is_empty());
        h.push(3.0, 7);
        assert_eq!(h.peek(), Some(7));
        assert_eq!(h.len(), 1);
    }
}
