//! Execution statistics collected by a simulation run.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use crate::isa::FenceKind;
use crate::mem::{AccessOutcome, LineKeyHasher};

/// Per-fence-kind counter map. Updated on every fence retirement, so it
/// uses the simulator's fast deterministic hasher instead of SipHash; all
/// reads are point lookups (aggregation iterates [`FenceKind::ALL`], never
/// the map), so the hash function cannot influence results.
pub type FenceMap<V> = HashMap<FenceKind, V, BuildHasherDefault<LineKeyHasher>>;

/// Raw event counters, shared by all cores of a run.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Counters {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Atomic read-modify-writes executed.
    pub atomics: u64,
    /// Failed reservation retries inside atomics.
    pub cas_retries: u64,
    /// Load-acquires.
    pub acquires: u64,
    /// Store-releases.
    pub releases: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Dirty-line transfers between cores.
    pub coherence_transfers: u64,
    /// Cost-function invocations.
    pub cost_loop_invocations: u64,
    /// Total cost-function loop iterations.
    pub cost_loop_iters: u64,
    /// Fence executions by kind.
    pub fence_counts: FenceMap<u64>,
    /// Cycles spent stalled in fences, by kind.
    pub fence_cycles: FenceMap<f64>,
}

impl Counters {
    /// Record a memory-access outcome.
    pub fn record_access(&mut self, outcome: AccessOutcome) {
        match outcome {
            AccessOutcome::L1Hit => self.l1_hits += 1,
            AccessOutcome::LlcHit => self.llc_hits += 1,
            AccessOutcome::Dram => self.dram_accesses += 1,
            AccessOutcome::CoherenceTransfer => self.coherence_transfers += 1,
        }
    }

    /// Record a fence execution.
    pub fn record_fence(&mut self, kind: FenceKind) {
        *self.fence_counts.entry(kind).or_insert(0) += 1;
    }

    /// Record cycles spent in a fence.
    pub fn record_fence_cycles(&mut self, kind: FenceKind, cycles: f64) {
        *self.fence_cycles.entry(kind).or_insert(0.0) += cycles;
    }

    /// Accumulate another run's counters into this one — the campaign-level
    /// aggregation primitive the telemetry layer is built on.
    ///
    /// Summation order over fence kinds is fixed by [`FenceKind::ALL`], so
    /// aggregating the same multiset of runs always produces bit-identical
    /// totals regardless of worker count or arrival order... provided the
    /// *caller* merges runs in a deterministic order (float addition is not
    /// commutative-associative in general).
    pub fn merge(&mut self, other: &Counters) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.atomics += other.atomics;
        self.cas_retries += other.cas_retries;
        self.acquires += other.acquires;
        self.releases += other.releases;
        self.mispredicts += other.mispredicts;
        self.l1_hits += other.l1_hits;
        self.llc_hits += other.llc_hits;
        self.dram_accesses += other.dram_accesses;
        self.coherence_transfers += other.coherence_transfers;
        self.cost_loop_invocations += other.cost_loop_invocations;
        self.cost_loop_iters += other.cost_loop_iters;
        for kind in FenceKind::ALL {
            if let Some(&n) = other.fence_counts.get(&kind) {
                *self.fence_counts.entry(kind).or_insert(0) += n;
            }
            if let Some(&c) = other.fence_cycles.get(&kind) {
                *self.fence_cycles.entry(kind).or_insert(0.0) += c;
            }
        }
    }
}

/// Stall attribution of one executed instruction site, identified by its
/// stable site id `(thread, stream index)`. Produced by
/// `Machine::run_sited` through the [`crate::probe`] seam; `None` causes are
/// compute time (`total_cycles` minus the attributed stalls).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteStall {
    /// Thread (core) index.
    pub thread: u32,
    /// Instruction index within the thread's stream.
    pub index: u32,
    /// Fence kind executed at this site, if any.
    pub fence: Option<FenceKind>,
    /// Fence executions at this site.
    pub fences: u64,
    /// Cycles stalled in fences at this site.
    pub fence_cycles: f64,
    /// Cycles lost to store-buffer capacity stalls at this site.
    pub sb_stall_cycles: f64,
    /// Memory-access cycles exposed on the critical path at this site.
    pub mem_cycles: f64,
    /// Total cycles the site advanced its core's clock by.
    pub total_cycles: f64,
}

/// Result of one full program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecStats {
    /// Wall-clock time: the slowest core's finish time, in nanoseconds.
    pub wall_ns: f64,
    /// Per-core finish times, cycles.
    pub core_cycles: Vec<f64>,
    /// Event counters.
    pub counters: Counters,
    /// Cycles lost to store-buffer capacity stalls, summed over cores.
    pub sb_stall_cycles: f64,
    /// Number of store-buffer capacity stalls.
    pub sb_stalls: u64,
    /// Per-site stall attribution, sorted by `(thread, index)`. `None`
    /// unless the run was driven through `Machine::run_sited` — the
    /// default path carries no observability cost.
    pub per_site: Option<Vec<SiteStall>>,
}

impl ExecStats {
    /// Number of fences of `kind` executed.
    pub fn fences(&self, kind: FenceKind) -> u64 {
        self.counters.fence_counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total cycles spent stalled in fences of `kind`.
    pub fn fence_stall_cycles(&self, kind: FenceKind) -> f64 {
        self.counters
            .fence_cycles
            .get(&kind)
            .copied()
            .unwrap_or(0.0)
    }

    /// Mean cycles per fence of `kind`, if any executed.
    pub fn mean_fence_cycles(&self, kind: FenceKind) -> Option<f64> {
        let n = self.fences(kind);
        if n == 0 {
            None
        } else {
            Some(self.fence_stall_cycles(kind) / n as f64)
        }
    }

    /// Total fence executions across all kinds.
    pub fn total_fences(&self) -> u64 {
        FenceKind::ALL.iter().map(|&k| self.fences(k)).sum()
    }

    /// Total cycles stalled in fences across all kinds, summed in the
    /// stable [`FenceKind::ALL`] order.
    pub fn total_fence_stall_cycles(&self) -> f64 {
        FenceKind::ALL
            .iter()
            .map(|&k| self.fence_stall_cycles(k))
            .sum()
    }

    /// Sum of per-site fence stall cycles over sites whose fence is `kind`,
    /// if per-site attribution was collected.
    ///
    /// Mathematically this equals [`ExecStats::fence_stall_cycles`] — both
    /// accounts add the identical per-execution cost values — but the
    /// per-site sum regroups the additions, so the two agree to floating
    /// point reassociation (≈1e-9 relative), not bitwise.
    pub fn site_fence_stall_cycles(&self, kind: FenceKind) -> Option<f64> {
        self.per_site.as_ref().map(|sites| {
            sites
                .iter()
                .filter(|s| s.fence == Some(kind))
                .map(|s| s.fence_cycles)
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_accounting() {
        let mut c = Counters::default();
        c.record_fence(FenceKind::DmbIsh);
        c.record_fence(FenceKind::DmbIsh);
        c.record_fence_cycles(FenceKind::DmbIsh, 10.0);
        c.record_fence_cycles(FenceKind::DmbIsh, 14.0);
        let stats = ExecStats {
            wall_ns: 1.0,
            core_cycles: vec![],
            counters: c,
            sb_stall_cycles: 0.0,
            sb_stalls: 0,
            per_site: None,
        };
        assert_eq!(stats.fences(FenceKind::DmbIsh), 2);
        assert_eq!(stats.mean_fence_cycles(FenceKind::DmbIsh), Some(12.0));
        assert_eq!(stats.fences(FenceKind::Isb), 0);
        assert_eq!(stats.mean_fence_cycles(FenceKind::Isb), None);
        assert_eq!(stats.total_fences(), 2);
        assert_eq!(stats.total_fence_stall_cycles(), 24.0);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = Counters {
            loads: 1,
            stores: 2,
            cost_loop_invocations: 3,
            cost_loop_iters: 300,
            ..Counters::default()
        };
        a.record_fence(FenceKind::DmbIsh);
        a.record_fence_cycles(FenceKind::DmbIsh, 7.0);
        let mut b = Counters {
            loads: 10,
            mispredicts: 4,
            ..Counters::default()
        };
        b.record_fence(FenceKind::DmbIsh);
        b.record_fence(FenceKind::Isb);
        b.record_fence_cycles(FenceKind::DmbIsh, 5.0);
        b.record_fence_cycles(FenceKind::Isb, 48.0);
        a.merge(&b);
        assert_eq!(a.loads, 11);
        assert_eq!(a.stores, 2);
        assert_eq!(a.mispredicts, 4);
        assert_eq!(a.cost_loop_invocations, 3);
        assert_eq!(a.fence_counts[&FenceKind::DmbIsh], 2);
        assert_eq!(a.fence_counts[&FenceKind::Isb], 1);
        assert_eq!(a.fence_cycles[&FenceKind::DmbIsh], 12.0);
        assert_eq!(a.fence_cycles[&FenceKind::Isb], 48.0);
    }

    #[test]
    fn access_outcomes_tallied() {
        let mut c = Counters::default();
        c.record_access(AccessOutcome::L1Hit);
        c.record_access(AccessOutcome::L1Hit);
        c.record_access(AccessOutcome::Dram);
        c.record_access(AccessOutcome::CoherenceTransfer);
        assert_eq!(c.l1_hits, 2);
        assert_eq!(c.dram_accesses, 1);
        assert_eq!(c.coherence_transfers, 1);
        assert_eq!(c.llc_hits, 0);
    }
}
