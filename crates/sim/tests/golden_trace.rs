//! Golden-trace pins for the scheduler: the heap-ordered run loop must
//! replay the exact instruction interleaving the original `min_by` scan
//! produced. The expected `(thread, index)` sequences below were captured
//! from the pre-heap scheduler on pinned litmus shapes; any tie-break or
//! ordering drift in the scheduler rewrite shows up as a trace mismatch
//! long before it would surface as a baseline diff.

use wmm_sim::arch::{armv8_xgene1, power7};
use wmm_sim::isa::{AccessOrd, FenceKind, Instr, Loc};
use wmm_sim::{Machine, Probe, Program, WorkloadCtx};

/// Records the global begin-order of every instruction as `(thread, index)`.
struct TraceProbe {
    events: Vec<(usize, usize)>,
}

impl Probe for TraceProbe {
    fn begin(&mut self, thread: usize, index: usize, _instr: &Instr) {
        self.events.push((thread, index));
    }
}

fn store(line: u64) -> Instr {
    Instr::Store {
        loc: Loc::SharedRw(line),
        ord: AccessOrd::Plain,
    }
}

fn load(line: u64) -> Instr {
    Instr::Load {
        loc: Loc::SharedRw(line),
        ord: AccessOrd::Plain,
    }
}

fn trace_of(machine: &Machine, program: &Program, seed: u64) -> Vec<(usize, usize)> {
    let mut probe = TraceProbe { events: vec![] };
    machine.run_probed(program, &WorkloadCtx::default(), seed, &mut probe);
    assert_eq!(
        probe.events.len(),
        program.len(),
        "every instruction begins"
    );
    probe.events
}

fn sb_program(fence: FenceKind) -> Program {
    Program::new(vec![
        vec![store(1), Instr::Fence(fence), load(2)],
        vec![store(2), Instr::Fence(fence), load(1)],
    ])
}

fn mp_program() -> Program {
    Program::new(vec![
        vec![store(10), Instr::Fence(FenceKind::DmbIshSt), store(11)],
        vec![
            load(11),
            Instr::Fence(FenceKind::DmbIshLd),
            load(10),
            Instr::Compute { cycles: 5 },
        ],
    ])
}

fn iriw_program() -> Program {
    Program::new(vec![
        vec![store(1)],
        vec![store(2)],
        vec![load(1), Instr::Fence(FenceKind::DmbIsh), load(2)],
        vec![load(2), Instr::Fence(FenceKind::DmbIsh), load(1)],
    ])
}

/// Paced ping-pong over one shared line: keeps all four cores concurrently
/// live for dozens of events, so the scheduler's pick order is consulted at
/// nearly every step.
fn contended_program() -> Program {
    let paced = |tid: u64| -> Vec<Instr> {
        (0..8)
            .flat_map(|i| {
                vec![
                    Instr::Compute { cycles: 30 },
                    if (i + tid).is_multiple_of(2) {
                        store(7)
                    } else {
                        load(7)
                    },
                ]
            })
            .collect()
    };
    Program::new(vec![paced(0), paced(1), paced(2), paced(3)])
}

const SB_ARM: &[(usize, usize)] = &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)];

const MP_ARM: &[(usize, usize)] = &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (1, 3)];

const IRIW_ARM: &[(usize, usize)] = &[
    (0, 0),
    (1, 0),
    (2, 0),
    (3, 0),
    (2, 1),
    (2, 2),
    (3, 1),
    (3, 2),
];

const SB_POWER: &[(usize, usize)] = &[(0, 0), (0, 1), (1, 0), (1, 1), (0, 2), (1, 2)];

#[rustfmt::skip]
const CONTENDED_ARM: &[(usize, usize)] = &[
    (0, 0), (1, 0), (0, 1), (0, 2), (2, 0), (1, 1), (0, 3), (0, 4), (3, 0), (2, 1),
    (2, 2), (0, 5), (0, 6), (3, 1), (2, 3), (1, 2), (0, 7), (0, 8), (2, 4), (1, 3),
    (1, 4), (3, 2), (0, 9), (0, 10), (2, 5), (2, 6), (1, 5), (3, 3), (3, 4), (0, 11),
    (2, 7), (2, 8), (3, 5), (3, 6), (1, 6), (0, 12), (2, 9), (2, 10), (3, 7), (3, 8),
    (1, 7), (1, 8), (0, 13), (0, 14), (2, 11), (3, 9), (1, 9), (0, 15), (3, 10),
    (1, 10), (2, 12), (3, 11), (3, 12), (1, 11), (1, 12), (2, 13), (2, 14), (3, 13),
    (1, 13), (2, 15), (1, 14), (3, 14), (1, 15), (3, 15),
];

#[test]
fn sb_trace_matches_pre_heap_scheduler() {
    let arm = Machine::new(armv8_xgene1());
    assert_eq!(trace_of(&arm, &sb_program(FenceKind::DmbIsh), 7), SB_ARM);
}

#[test]
fn mp_trace_matches_pre_heap_scheduler() {
    let arm = Machine::new(armv8_xgene1());
    assert_eq!(trace_of(&arm, &mp_program(), 7), MP_ARM);
}

#[test]
fn iriw_trace_matches_pre_heap_scheduler() {
    let arm = Machine::new(armv8_xgene1());
    assert_eq!(trace_of(&arm, &iriw_program(), 7), IRIW_ARM);
}

#[test]
fn sb_power_trace_matches_pre_heap_scheduler() {
    let pow = Machine::new(power7());
    assert_eq!(trace_of(&pow, &sb_program(FenceKind::HwSync), 7), SB_POWER);
}

#[test]
fn contended_trace_matches_pre_heap_scheduler() {
    // 64 events across 4 concurrently-live cores: the scheduler's pick
    // order is consulted at nearly every step, so any heap/tie-break drift
    // breaks this long before it would shift an aggregate baseline.
    let arm = Machine::new(armv8_xgene1());
    assert_eq!(trace_of(&arm, &contended_program(), 7), CONTENDED_ARM);
}

#[test]
fn traces_are_seed_stable() {
    // Different seed, same shape: trace may differ between seeds, but each
    // seed must replay identically run-to-run.
    let arm = Machine::new(armv8_xgene1());
    let a = trace_of(&arm, &contended_program(), 1234);
    let b = trace_of(&arm, &contended_program(), 1234);
    assert_eq!(a, b);
}
