//! Comparative results with compounded errors.
//!
//! The paper: "In the case of comparative results, errors are compounded as
//! would be expected, i.e. comparative minimum is test case minimum divided by
//! base case maximum." This module implements that rule for relative
//! performance (`base_time / test_time`, so values < 1 mean slowdown when the
//! samples are execution times).

use crate::summary::Summary;

/// A comparison of a test case against a base case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Ratio of geometric means (the headline relative-performance number).
    pub ratio: f64,
    /// Conservative lower bound: `test.min / base.max`.
    pub min: f64,
    /// Conservative upper bound: `test.max / base.min`.
    pub max: f64,
    /// Number of samples in the test case.
    pub n_test: usize,
    /// Number of samples in the base case.
    pub n_base: usize,
}

impl Comparison {
    /// Build a comparison from two sample sets, where each sample is a
    /// *performance* figure (higher = better, e.g. throughput or `1/time`).
    pub fn of(test: &[f64], base: &[f64]) -> Self {
        let t = Summary::of(test);
        let b = Summary::of(base);
        Comparison {
            ratio: t.gmean / b.gmean,
            min: t.min / b.max,
            max: t.max / b.min,
            n_test: t.n,
            n_base: b.n,
        }
    }

    /// Build a comparison from execution **times** (lower = better) by
    /// converting to relative performance `base_time / test_time`.
    pub fn of_times(test_times: &[f64], base_times: &[f64]) -> Self {
        let t = Summary::of(test_times);
        let b = Summary::of(base_times);
        Comparison {
            ratio: b.gmean / t.gmean,
            // Worst relative performance: slowest test vs fastest base.
            min: b.min / t.max,
            max: b.max / t.min,
            n_test: t.n,
            n_base: b.n,
        }
    }

    /// Whether the comparison is statistically distinguishable from "no
    /// change" under the conservative min/max rule: the whole compounded
    /// interval lies on one side of 1.0.
    pub fn significant(&self) -> bool {
        self.min > 1.0 || self.max < 1.0
    }

    /// Percentage change implied by the ratio (e.g. `-12.5` for the paper's
    /// POWER7 `sync` result).
    pub fn percent_change(&self) -> f64 {
        (self.ratio - 1.0) * 100.0
    }
}

/// Confidence-interval style bounds on a ratio of two means, compounding the
/// per-side 95% intervals conservatively (lo/hi of the quotient of intervals).
pub fn ratio_ci(test: &[f64], base: &[f64], confidence: f64) -> (f64, f64, f64) {
    let t = crate::tdist::confidence_interval(test, confidence);
    let b = crate::tdist::confidence_interval(base, confidence);
    let centre = t.mean / b.mean;
    let lo = t.lo() / b.hi();
    let hi = t.hi() / b.lo().max(1e-300);
    (centre, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_ratio_one() {
        let s = [1.0, 1.1, 0.9];
        let c = Comparison::of(&s, &s);
        assert!((c.ratio - 1.0).abs() < 1e-12);
        assert!(c.min < 1.0 && c.max > 1.0);
        assert!(!c.significant());
    }

    #[test]
    fn clear_slowdown_is_significant() {
        let base = [1.00, 1.01, 0.99];
        let test = [0.80, 0.81, 0.79];
        let c = Comparison::of(&test, &base);
        assert!(c.ratio < 0.85);
        assert!(c.significant());
        assert!(c.percent_change() < -15.0);
    }

    #[test]
    fn time_based_comparison_inverts() {
        // Test takes twice as long => relative performance 0.5.
        let base_t = [10.0, 10.0];
        let test_t = [20.0, 20.0];
        let c = Comparison::of_times(&test_t, &base_t);
        assert!((c.ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compounding_rule_matches_paper() {
        let base = [1.0, 2.0]; // max 2.0, min 1.0
        let test = [3.0, 4.0]; // min 3.0, max 4.0
        let c = Comparison::of(&test, &base);
        assert_eq!(c.min, 3.0 / 2.0);
        assert_eq!(c.max, 4.0 / 1.0);
    }

    #[test]
    fn ratio_ci_contains_true_ratio() {
        let base = [1.0, 1.05, 0.95, 1.02, 0.98];
        let test = [1.2, 1.25, 1.15, 1.22, 1.18];
        let (centre, lo, hi) = ratio_ci(&test, &base, 0.95);
        assert!(lo < centre && centre < hi);
        assert!(lo > 1.0, "clearly faster: whole interval above 1");
    }
}
