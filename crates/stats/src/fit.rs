//! Non-linear least squares by Levenberg–Marquardt.
//!
//! This plays the role of scipy's `curve_fit` in the paper: given samples
//! `(aᵢ, pᵢ)` of benchmark performance under increasing injected cost, fit the
//! sensitivity model `p(a) = 1/((1-k) + k·a)` and report both the estimate and
//! its variance. The solver is generic over the model function; the Jacobian
//! is computed by central finite differences.

use crate::linalg::{invert, solve, Matrix};

/// Options controlling the Levenberg–Marquardt iteration.
#[derive(Debug, Clone, Copy)]
pub struct FitOptions {
    /// Maximum number of LM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the relative reduction of the sum of squares.
    pub tol: f64,
    /// Initial damping parameter λ.
    pub lambda0: f64,
    /// Relative step used for finite-difference Jacobians.
    pub fd_step: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            max_iter: 200,
            tol: 1e-12,
            lambda0: 1e-3,
            fd_step: 1e-6,
        }
    }
}

/// Result of a successful fit.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Estimated parameters.
    pub params: Vec<f64>,
    /// Estimated standard error of each parameter (square root of the
    /// diagonal of the covariance matrix, scaled by the residual variance).
    pub std_errors: Vec<f64>,
    /// Final sum of squared residuals.
    pub ssr: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Coefficient of determination, `1 - SSR/SST`.
    pub r_squared: f64,
}

impl FitResult {
    /// Relative standard error of parameter `i` (`std_error / |estimate|`),
    /// the paper's "± x %" form for `k`.
    pub fn relative_error(&self, i: usize) -> f64 {
        let p = self.params[i];
        if p == 0.0 {
            f64::INFINITY
        } else {
            self.std_errors[i] / p.abs()
        }
    }
}

/// Errors from `curve_fit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer data points than parameters.
    TooFewPoints,
    /// The normal equations were singular at every damping level tried.
    Singular,
    /// The model produced a non-finite value during fitting.
    NonFinite,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewPoints => write!(f, "fewer data points than parameters"),
            FitError::Singular => write!(f, "singular normal equations"),
            FitError::NonFinite => write!(f, "model produced a non-finite value"),
        }
    }
}

impl std::error::Error for FitError {}

fn residuals<F>(model: &F, xs: &[f64], ys: &[f64], params: &[f64]) -> Result<Vec<f64>, FitError>
where
    F: Fn(f64, &[f64]) -> f64,
{
    let mut out = Vec::with_capacity(xs.len());
    for (&x, &y) in xs.iter().zip(ys) {
        let v = y - model(x, params);
        if !v.is_finite() {
            return Err(FitError::NonFinite);
        }
        out.push(v);
    }
    Ok(out)
}

fn jacobian<F>(model: &F, xs: &[f64], params: &[f64], fd_step: f64) -> Result<Matrix, FitError>
where
    F: Fn(f64, &[f64]) -> f64,
{
    let n = xs.len();
    let p = params.len();
    let mut j = Matrix::zeros(n, p);
    let mut lo = params.to_vec();
    let mut hi = params.to_vec();
    for c in 0..p {
        let h = fd_step * (1.0 + params[c].abs());
        lo[c] = params[c] - h;
        hi[c] = params[c] + h;
        for (r, &x) in xs.iter().enumerate() {
            let d = (model(x, &hi) - model(x, &lo)) / (2.0 * h);
            if !d.is_finite() {
                return Err(FitError::NonFinite);
            }
            // Residual is y - f, so ∂r/∂θ = -∂f/∂θ; we keep J = ∂f/∂θ and
            // account for the sign when forming the step.
            j[(r, c)] = d;
        }
        lo[c] = params[c];
        hi[c] = params[c];
    }
    Ok(j)
}

fn ssr_of(r: &[f64]) -> f64 {
    r.iter().map(|v| v * v).sum()
}

/// Fit `model(x, params)` to the data `(xs, ys)` starting from `p0`.
///
/// Returns parameter estimates, standard errors (from the residual variance
/// and `(JᵀJ)⁻¹`, exactly as scipy's `curve_fit` reports `pcov`), the final
/// SSR and an R².
pub fn curve_fit<F>(
    model: F,
    xs: &[f64],
    ys: &[f64],
    p0: &[f64],
    opts: FitOptions,
) -> Result<FitResult, FitError>
where
    F: Fn(f64, &[f64]) -> f64,
{
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    let np = p0.len();
    if n < np {
        return Err(FitError::TooFewPoints);
    }

    let mut params = p0.to_vec();
    let mut r = residuals(&model, xs, ys, &params)?;
    let mut ssr = ssr_of(&r);
    let mut lambda = opts.lambda0;
    let mut iterations = 0;

    for it in 0..opts.max_iter {
        iterations = it + 1;
        let j = jacobian(&model, xs, &params, opts.fd_step)?;
        let jtj = j.gram();
        let jtr = j.tr_mul_vec(&r);

        // Try increasing damping until a step reduces the SSR.
        let mut stepped = false;
        for _ in 0..40 {
            let mut a = jtj.clone();
            for d in 0..np {
                a[(d, d)] += lambda * (1.0 + jtj[(d, d)]);
            }
            let Some(step) = solve(&a, &jtr) else {
                lambda *= 10.0;
                continue;
            };
            let cand: Vec<f64> = params.iter().zip(&step).map(|(p, s)| p + s).collect();
            let Ok(cr) = residuals(&model, xs, ys, &cand) else {
                lambda *= 10.0;
                continue;
            };
            let cssr = ssr_of(&cr);
            if cssr < ssr {
                let rel = (ssr - cssr) / ssr.max(1e-300);
                params = cand;
                r = cr;
                ssr = cssr;
                lambda = (lambda / 10.0).max(1e-12);
                stepped = true;
                if rel < opts.tol {
                    // Converged.
                    return finish(model, xs, ys, params, ssr, iterations, opts);
                }
                break;
            }
            lambda *= 10.0;
        }
        if !stepped {
            // No improving step found: either converged or singular.
            return finish(model, xs, ys, params, ssr, iterations, opts);
        }
    }
    finish(model, xs, ys, params, ssr, iterations, opts)
}

fn finish<F>(
    model: F,
    xs: &[f64],
    ys: &[f64],
    params: Vec<f64>,
    ssr: f64,
    iterations: usize,
    opts: FitOptions,
) -> Result<FitResult, FitError>
where
    F: Fn(f64, &[f64]) -> f64,
{
    let n = xs.len();
    let np = params.len();
    let j = jacobian(&model, xs, &params, opts.fd_step)?;
    let jtj = j.gram();
    // Residual variance: SSR / (n - p); guard the saturated case.
    let dof = if n > np { (n - np) as f64 } else { 1.0 };
    let sigma2 = ssr / dof;
    let std_errors = match invert(&jtj) {
        Some(cov) => (0..np)
            .map(|i| (sigma2 * cov[(i, i)]).max(0.0).sqrt())
            .collect(),
        None => vec![f64::INFINITY; np],
    };
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let sst: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let r_squared = if sst > 0.0 { 1.0 - ssr / sst } else { 1.0 };
    Ok(FitResult {
        params,
        std_errors,
        ssr,
        iterations,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's sensitivity model, used here only as a test target;
    /// the canonical implementation lives in `wmmbench::model`.
    fn sensitivity(a: f64, p: &[f64]) -> f64 {
        let k = p[0];
        1.0 / ((1.0 - k) + k * a)
    }

    #[test]
    fn fits_linear_model_exactly() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let fit = curve_fit(
            |x, p| p[0] * x + p[1],
            &xs,
            &ys,
            &[1.0, 0.0],
            FitOptions::default(),
        )
        .unwrap();
        assert!((fit.params[0] - 3.0).abs() < 1e-8);
        assert!((fit.params[1] - 2.0).abs() < 1e-8);
        assert!(fit.ssr < 1e-12);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn fits_sensitivity_model_noiseless() {
        let k = 0.00277; // Fig. 1's example value.
        let xs: Vec<f64> = (0..15).map(|e| (1u64 << e) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&a| sensitivity(a, &[k])).collect();
        let fit = curve_fit(sensitivity, &xs, &ys, &[1e-4], FitOptions::default()).unwrap();
        assert!(
            (fit.params[0] - k).abs() < 1e-8,
            "recovered {} want {k}",
            fit.params[0]
        );
    }

    #[test]
    fn fits_sensitivity_model_with_noise() {
        // Deterministic pseudo-noise; the estimate should stay within ~5%.
        let k = 0.0088;
        let xs: Vec<f64> = (0..12).map(|e| (1u64 << e) as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let jitter = 1.0 + 0.004 * ((i as f64 * 2.399).sin());
                sensitivity(a, &[k]) * jitter
            })
            .collect();
        let fit = curve_fit(sensitivity, &xs, &ys, &[1e-4], FitOptions::default()).unwrap();
        let rel = (fit.params[0] - k).abs() / k;
        assert!(rel < 0.05, "relative error {rel}");
        assert!(fit.std_errors[0].is_finite());
    }

    #[test]
    fn too_few_points_rejected() {
        let err = curve_fit(
            |x, p| p[0] * x + p[1] + p[2],
            &[1.0, 2.0],
            &[1.0, 2.0],
            &[0.0, 0.0, 0.0],
            FitOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, FitError::TooFewPoints);
    }

    #[test]
    fn reports_reasonable_std_error() {
        // With visible noise the standard error must be non-zero and smaller
        // than the estimate for a well-conditioned problem.
        let k = 0.01;
        let xs: Vec<f64> = (0..10).map(|e| (1u64 << e) as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &a)| sensitivity(a, &[k]) * (1.0 + 0.01 * ((i % 3) as f64 - 1.0)))
            .collect();
        let fit = curve_fit(sensitivity, &xs, &ys, &[1e-3], FitOptions::default()).unwrap();
        assert!(fit.std_errors[0] > 0.0);
        assert!(fit.relative_error(0) < 0.5);
    }
}
