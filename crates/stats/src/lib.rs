//! # wmm-stats
//!
//! Statistics and numerical fitting support for the `wmmbench` reproduction
//! of *Benchmarking Weak Memory Models* (Ritson & Owens, PPoPP 2016).
//!
//! The paper's methodology needs exactly four numerical tools, all provided
//! here with no external dependencies:
//!
//! * **Summary statistics** ([`summary`]) — arithmetic and geometric means,
//!   sample variance, minima/maxima. The paper reports geometric means of six
//!   or more samples per configuration.
//! * **Student-t confidence intervals** ([`tdist`]) — all error bars in the
//!   paper are 95% intervals from the t-distribution, appropriate for small
//!   sample counts.
//! * **Non-linear least squares** ([`fit`]) — a Levenberg–Marquardt
//!   implementation playing the role of scipy's `curve_fit`, used to estimate
//!   the sensitivity `k` of a benchmark to a code path, together with the
//!   estimated parameter variance the paper quotes (e.g. `k = 0.00277 ± 2.5%`).
//! * **Comparative ratios with compounded errors** ([`compare`]) — the paper
//!   compares a test case against a base case by dividing distributions, with
//!   the conservative rule "comparative minimum is test minimum divided by
//!   base maximum".
//!
//! Everything is deterministic and `f64`-based.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod fit;
pub mod linalg;
pub mod special;
pub mod summary;
pub mod tdist;

pub use compare::{ratio_ci, Comparison};
pub use fit::{curve_fit, FitError, FitOptions, FitResult};
pub use summary::Summary;
pub use tdist::{confidence_interval, t_quantile, ConfidenceInterval};
