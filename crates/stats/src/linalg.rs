//! Minimal dense linear algebra for the Levenberg–Marquardt solver.
//!
//! The sensitivity model has one parameter, but `curve_fit` is generic so the
//! solver handles small square systems (a handful of parameters at most) via
//! Gaussian elimination with partial pivoting. No external BLAS.

/// A small, dense, row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `AᵀA` for this matrix (used to form the normal equations).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in 0..self.cols {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += self[(r, i)] * self[(r, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// `Aᵀv` for a column vector `v` of length `rows`.
    pub fn tr_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for r in 0..self.rows {
                acc += self[(r, i)] * v[r];
            }
            *o = acc;
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Solve `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting. Returns `None` if `A` is (numerically) singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve requires a square matrix");
    assert_eq!(b.len(), n);
    let mut m = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if m[(r, col)].abs() > m[(pivot, col)].abs() {
                pivot = r;
            }
        }
        if m[(pivot, col)].abs() < 1e-300 {
            return None;
        }
        if pivot != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot, c)];
                m[(pivot, c)] = tmp;
            }
            x.swap(col, pivot);
        }
        // Eliminate below.
        for r in (col + 1)..n {
            let f = m[(r, col)] / m[(col, col)];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m[(col, c)];
                m[(r, c)] -= f * v;
            }
            x[r] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for c in (col + 1)..n {
            acc -= m[(col, c)] * x[c];
        }
        x[col] = acc / m[(col, col)];
    }
    if x.iter().all(|v| v.is_finite()) {
        Some(x)
    } else {
        None
    }
}

/// Invert a square matrix by solving against the identity columns.
/// Returns `None` for singular matrices.
pub fn invert(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    let mut out = Matrix::zeros(n, n);
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = solve(a, &e)?;
        for i in 0..n {
            out[(i, j)] = col[i];
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = Matrix::identity(3);
        let x = solve(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_2x2() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 0.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 0.0;
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn invert_roundtrip() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 7.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 6.0;
        let inv = invert(&a).unwrap();
        // A * A^-1 = I
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0;
                for k in 0..2 {
                    acc += a[(i, k)] * inv[(k, j)];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((acc - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_and_trmul() {
        let mut j = Matrix::zeros(3, 2);
        j[(0, 0)] = 1.0;
        j[(1, 0)] = 2.0;
        j[(2, 0)] = 3.0;
        j[(0, 1)] = 1.0;
        j[(1, 1)] = 1.0;
        j[(2, 1)] = 1.0;
        let g = j.gram();
        assert_eq!(g[(0, 0)], 14.0);
        assert_eq!(g[(0, 1)], 6.0);
        assert_eq!(g[(1, 1)], 3.0);
        let v = j.tr_mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![6.0, 3.0]);
    }
}
