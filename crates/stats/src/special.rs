//! Special functions needed by the t-distribution: log-gamma and the
//! regularised incomplete beta function.
//!
//! Implementations follow the classic Lanczos approximation for `ln Γ` and the
//! Lentz continued-fraction evaluation of the incomplete beta function. Both
//! are accurate to well beyond the needs of 95% confidence intervals on six
//! samples.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients), accurate to
/// around 1e-13 over the domain used here (half-integer degrees of freedom).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularised incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// Evaluated with the Lentz modified continued fraction; uses the symmetry
/// `I_x(a,b) = 1 - I_{1-x}(b,a)` to stay in the rapidly-converging region.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a,b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a,b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction core of the incomplete beta function (Numerical
/// Recipes `betacf`, Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-16;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, f) in facts.iter().enumerate() {
            let n = (i + 1) as f64;
            assert!(
                close(ln_gamma(n), f64::ln(*f), 1e-12),
                "ln_gamma({n}) = {} want {}",
                ln_gamma(n),
                f64::ln(*f)
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
        // Γ(3/2) = sqrt(pi)/2
        assert!(close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-12
        ));
    }

    #[test]
    fn beta_inc_boundaries() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_inc_symmetry() {
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.11)] {
            let lhs = beta_inc(a, b, x);
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
            assert!(close(lhs, rhs, 1e-12), "symmetry failed at {a},{b},{x}");
        }
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1,1) = x (uniform CDF).
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!(close(beta_inc(1.0, 1.0, x), x, 1e-12));
        }
    }

    #[test]
    fn beta_inc_known_value() {
        // I_{0.5}(2,2) = 0.5 by symmetry of Beta(2,2).
        assert!(close(beta_inc(2.0, 2.0, 0.5), 0.5, 1e-12));
    }
}
