//! Summary statistics over sample sets.
//!
//! The paper reports the **geometric mean** of six or more samples (to reduce
//! the impact of outliers), plus minima/maxima for the comparative error
//! rule, and the sample standard deviation feeding the Student-t interval.

/// Summary statistics of a set of (strictly positive) performance samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean (the paper's headline aggregate).
    pub gmean: f64,
    /// Unbiased sample variance (denominator `n - 1`).
    pub variance: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarise a non-empty slice of samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains non-finite values, or if a
    /// sample is non-positive (performance figures are times or rates and the
    /// geometric mean requires positivity).
    pub fn of(samples: &[f64]) -> Self {
        assert!(
            !samples.is_empty(),
            "Summary::of requires at least one sample"
        );
        let n = samples.len();
        let mut sum = 0.0;
        let mut log_sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &s in samples {
            assert!(s.is_finite(), "non-finite sample {s}");
            assert!(s > 0.0, "non-positive sample {s}");
            sum += s;
            log_sum += s.ln();
            min = min.min(s);
            max = max.max(s);
        }
        let mean = sum / n as f64;
        let gmean = (log_sum / n as f64).exp();
        let variance = if n > 1 {
            samples.iter().map(|&s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            gmean,
            variance,
            min,
            max,
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Coefficient of variation (`std_dev / mean`), the paper's informal
    /// "stability" measure: unstable benchmarks have high relative spread.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }
}

/// Geometric mean of a slice of strictly positive values.
pub fn gmean(values: &[f64]) -> f64 {
    Summary::of(values).gmean
}

/// Arithmetic mean of a slice. Used where the paper explicitly chooses the
/// arithmetic mean (aggregating lmbench sub-results, Figs. 7–8 sums).
pub fn amean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "amean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples() {
        let s = Summary::of(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.gmean, 2.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn gmean_le_amean() {
        let s = Summary::of(&[1.0, 2.0, 4.0, 8.0]);
        assert!(s.gmean < s.mean, "AM-GM inequality");
        assert!((s.gmean - 2.828_427_124_746_190_3).abs() < 1e-12);
        assert_eq!(s.mean, 3.75);
    }

    #[test]
    fn variance_known_value() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.variance - 1.0).abs() < 1e-12);
        assert!((s.std_err() - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn rejects_nonpositive() {
        Summary::of(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty() {
        Summary::of(&[]);
    }
}
