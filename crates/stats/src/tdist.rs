//! Student-t quantiles and confidence intervals.
//!
//! The paper: "All error bars represent a 95% confidence interval computed
//! using the Student's t-distribution, which is appropriate for the small
//! number of samples available."

use crate::special::beta_inc;
use crate::summary::Summary;

/// CDF of the Student-t distribution with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided quantile: the value `t*` such that
/// `P(-t* <= T <= t*) = confidence` for `T ~ t(df)`.
///
/// Solved by bisection on the CDF; monotonicity makes this robust for any
/// `df >= 1` and `confidence ∈ (0, 1)`.
pub fn t_quantile(confidence: f64, df: usize) -> f64 {
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0,1), got {confidence}"
    );
    assert!(df >= 1, "need at least one degree of freedom");
    let df = df as f64;
    let target = 0.5 + confidence / 2.0; // upper-tail CDF value
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    // Grow the bracket until it contains the quantile (heavy tails for df=1).
    while t_cdf(hi, df) < target {
        hi *= 2.0;
        assert!(hi < 1e12, "t_quantile bracket blew up");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// A symmetric confidence interval around a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Centre of the interval (the sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// The confidence level the interval was built for (e.g. `0.95`).
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Relative half-width (`half_width / mean`), the paper's "± x %" form.
    pub fn relative(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.half_width / self.mean).abs()
        }
    }
}

/// Student-t confidence interval for the mean of `samples`.
///
/// With a single sample the half-width is zero by convention (no spread
/// information), matching how a lone measurement is plotted without bars.
pub fn confidence_interval(samples: &[f64], confidence: f64) -> ConfidenceInterval {
    let s = Summary::of(samples);
    if s.n < 2 {
        return ConfidenceInterval {
            mean: s.mean,
            half_width: 0.0,
            confidence,
        };
    }
    let t = t_quantile(confidence, s.n - 1);
    ConfidenceInterval {
        mean: s.mean,
        half_width: t * s.std_err(),
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry() {
        for df in [1.0, 3.0, 5.0, 30.0] {
            for t in [0.1, 0.7, 1.5, 3.0] {
                let up = t_cdf(t, df);
                let down = t_cdf(-t, df);
                assert!((up + down - 1.0).abs() < 1e-12, "df={df} t={t}");
            }
        }
    }

    #[test]
    fn quantile_matches_tables() {
        // Classic two-sided 95% t-table values.
        let cases = [
            (1, 12.706),
            (2, 4.303),
            (5, 2.571),
            (10, 2.228),
            (30, 2.042),
        ];
        for (df, expect) in cases {
            let got = t_quantile(0.95, df);
            assert!(
                (got - expect).abs() < 5e-3,
                "df={df}: got {got}, want {expect}"
            );
        }
    }

    #[test]
    fn quantile_99_gt_95() {
        for df in [2, 5, 9] {
            assert!(t_quantile(0.99, df) > t_quantile(0.95, df));
        }
    }

    #[test]
    fn quantile_approaches_normal() {
        // For large df the 95% two-sided quantile tends to 1.96.
        let got = t_quantile(0.95, 10_000);
        assert!((got - 1.96).abs() < 0.01, "got {got}");
    }

    #[test]
    fn interval_contains_mean_of_tight_data() {
        let ci = confidence_interval(&[10.0, 10.1, 9.9, 10.05, 9.95, 10.0], 0.95);
        assert!(ci.contains(10.0));
        assert!(ci.half_width < 0.2);
        assert!(ci.relative() < 0.02);
    }

    #[test]
    fn single_sample_interval_is_degenerate() {
        let ci = confidence_interval(&[4.2], 0.95);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.mean, 4.2);
    }

    #[test]
    fn six_samples_use_five_df() {
        // Matches the paper's setup: >= 6 samples.
        let samples = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0];
        let ci = confidence_interval(&samples, 0.95);
        let s = Summary::of(&samples);
        let expect = t_quantile(0.95, 5) * s.std_err();
        assert!((ci.half_width - expect).abs() < 1e-12);
    }
}
