//! DaCapo-like JVM workloads plus the Spark PageRank macrobenchmark.
//!
//! Each benchmark is a multi-threaded stream of "transactions" — bursts of
//! Java-level operations with a characteristic barrier profile. Per-1
//! transaction operation counts (reference stores with card marks, volatile
//! accesses, monitor pairs, CAS) control which barrier code paths the
//! benchmark exercises and how densely; per-architecture context parameters
//! control locality and stability.
//!
//! The paper's DaCapo subset is the concurrent one identified by Kalibera et
//! al. \[19\]; spark runs GraphX PageRank over the LiveJournal graph \[20\] —
//! here a seeded synthetic graph workload with the same barrier-heavy
//! profile (shuffle writes → card marks, block-manager locks, volatile
//! progress counters).

use wmm_jvm::barrier::Combined;
use wmm_jvm::jit::{lower, JavaOp, JitConfig};
use wmm_sim::arch::Arch;
use wmm_sim::isa::Loc;
use wmm_sim::machine::WorkloadCtx;
use wmm_sim::SplitMix64;
use wmmbench::image::Image;
use wmmbench::runner::BenchSpec;

/// Per-architecture execution context of a profile.
#[derive(Debug, Clone, Copy)]
pub struct ArchCtx {
    /// Run-level noise amplitude (stability).
    pub noise_amp: f64,
    /// L1 miss rate on private data.
    pub l1_miss_rate: f64,
    /// Fraction of misses that reach DRAM.
    pub dram_frac: f64,
    /// Load-queue pressure at fence sites.
    pub load_pressure: f64,
}

/// A JVM benchmark profile: per-transaction operation mix plus context.
#[derive(Debug, Clone)]
pub struct JvmProfile {
    /// Benchmark name as printed in Fig. 5.
    pub name: &'static str,
    /// Worker threads (the paper's machines run up to 8 cores on ARM).
    pub threads: usize,
    /// Transactions per thread at scale 1.0.
    pub transactions: usize,
    /// Straight-line work per transaction, cycles.
    pub work_cycles: u32,
    /// Plain field loads per transaction.
    pub field_loads: u32,
    /// Plain field stores per transaction.
    pub field_stores: u32,
    /// Reference stores (each emits a GC card-mark `StoreStore` site).
    pub ref_stores: f64,
    /// Volatile loads per transaction (fractional = probabilistic).
    pub vloads: f64,
    /// Volatile stores per transaction.
    pub vstores: f64,
    /// Monitor enter/exit pairs per transaction.
    pub monitors: f64,
    /// `java.util.concurrent` CAS operations per transaction.
    pub cas: f64,
    /// Allocations per transaction.
    pub allocs: f64,
    /// Context on the ARMv8 machine.
    pub arm: ArchCtx,
    /// Context on the POWER7 machine.
    pub power: ArchCtx,
}

impl JvmProfile {
    fn ctx_for(&self, arch: Arch) -> ArchCtx {
        match arch {
            Arch::ArmV8 => self.arm,
            Arch::Power7 => self.power,
        }
    }
}

fn stable(noise: f64) -> ArchCtx {
    ArchCtx {
        noise_amp: noise,
        l1_miss_rate: 0.02,
        dram_frac: 0.15,
        load_pressure: 0.12,
    }
}

/// The eight Fig. 5 profiles. Operation mixes are calibrated so the fitted
/// all-barrier sensitivities land near the paper's values; see EXPERIMENTS.md
/// for measured-vs-paper numbers.
pub fn profiles() -> Vec<JvmProfile> {
    vec![
        // h2: in-memory database — lock-heavy transactions, moderate writes.
        JvmProfile {
            name: "h2",
            threads: 4,
            transactions: 60,
            work_cycles: 2800,
            field_loads: 40,
            field_stores: 6,
            ref_stores: 0.6,
            vloads: 0.1,
            vstores: 0.1,
            monitors: 1.8,
            cas: 0.2,
            allocs: 1.0,
            arm: stable(0.015),
            power: ArchCtx {
                l1_miss_rate: 0.55,
                dram_frac: 0.5,
                ..stable(0.02)
            },
        },
        // lusearch: text search — mostly reads, small index updates.
        JvmProfile {
            name: "lusearch",
            threads: 6,
            transactions: 55,
            work_cycles: 3000,
            field_loads: 60,
            field_stores: 3,
            ref_stores: 0.35,
            vloads: 0.15,
            vstores: 0.1,
            monitors: 1.0,
            cas: 0.1,
            allocs: 1.5,
            arm: ArchCtx {
                noise_amp: 0.05,
                ..stable(0.05)
            },
            power: ArchCtx {
                l1_miss_rate: 0.7,
                dram_frac: 0.5,
                ..stable(0.02)
            },
        },
        // spark: GraphX PageRank — shuffle-write heavy: card marks, block
        // manager locks, volatile progress counters. Most sensitive.
        JvmProfile {
            name: "spark",
            threads: 8,
            transactions: 70,
            work_cycles: 1950,
            field_loads: 8,
            field_stores: 6,
            ref_stores: 4.4,
            vloads: 0.08,
            vstores: 0.6,
            monitors: 2.1,
            cas: 0.1,
            allocs: 2.0,
            arm: stable(0.012),
            power: stable(0.015),
        },
        // sunflow: ray tracer — compute bound, few barriers.
        JvmProfile {
            name: "sunflow",
            threads: 8,
            transactions: 50,
            work_cycles: 3600,
            field_loads: 38,
            field_stores: 4,
            ref_stores: 1.0,
            vloads: 0.3,
            vstores: 0.15,
            monitors: 0.4,
            cas: 0.1,
            allocs: 0.8,
            arm: stable(0.015),
            power: ArchCtx {
                noise_amp: 0.06,
                l1_miss_rate: 0.5,
                dram_frac: 0.4,
                ..stable(0.06)
            },
        },
        // tomcat: servlet container — request dispatch locks; unstable.
        JvmProfile {
            name: "tomcat",
            threads: 6,
            transactions: 55,
            work_cycles: 2600,
            field_loads: 22,
            field_stores: 5,
            ref_stores: 1.0,
            vloads: 0.25,
            vstores: 0.25,
            monitors: 0.55,
            cas: 0.3,
            allocs: 1.2,
            arm: ArchCtx {
                noise_amp: 0.06,
                ..stable(0.06)
            },
            power: ArchCtx {
                noise_amp: 0.07,
                l1_miss_rate: 0.2,
                ..stable(0.07)
            },
        },
        // tradebeans: EJB transaction processing.
        JvmProfile {
            name: "tradebeans",
            threads: 4,
            transactions: 55,
            work_cycles: 2600,
            field_loads: 20,
            field_stores: 6,
            ref_stores: 1.1,
            vloads: 0.3,
            vstores: 0.3,
            monitors: 0.45,
            cas: 0.2,
            allocs: 1.3,
            arm: ArchCtx {
                noise_amp: 0.06,
                ..stable(0.06)
            },
            power: ArchCtx {
                l1_miss_rate: 0.15,
                ..stable(0.025)
            },
        },
        // tradesoap: like tradebeans with SOAP serialisation overhead.
        JvmProfile {
            name: "tradesoap",
            threads: 4,
            transactions: 50,
            work_cycles: 2900,
            field_loads: 22,
            field_stores: 7,
            ref_stores: 1.0,
            vloads: 0.25,
            vstores: 0.25,
            monitors: 0.55,
            cas: 0.2,
            allocs: 1.4,
            arm: stable(0.02),
            power: ArchCtx {
                l1_miss_rate: 0.18,
                ..stable(0.025)
            },
        },
        // xalan: XML transform — monitor-heavy on shared output buffers;
        // sensitive on ARM, unstable (SMT) on POWER.
        JvmProfile {
            name: "xalan",
            threads: 8,
            transactions: 60,
            work_cycles: 2200,
            field_loads: 70,
            field_stores: 8,
            ref_stores: 1.2,
            vloads: 0.3,
            vstores: 0.3,
            monitors: 2.2,
            cas: 0.2,
            allocs: 1.0,
            arm: stable(0.015),
            power: ArchCtx {
                noise_amp: 0.15,
                l1_miss_rate: 0.8,
                dram_frac: 0.75,
                load_pressure: 0.2,
            },
        },
    ]
}

/// A runnable DaCapo-like benchmark: a profile bound to a JIT configuration
/// and an image scale.
pub struct DacapoBench {
    /// The workload profile.
    pub profile: JvmProfile,
    /// JIT configuration (arch, volatile mode, locking patch).
    pub jit: JitConfig,
    /// Image-size multiplier (1.0 = the profile's base size; tests use less).
    pub scale: f64,
}

impl DacapoBench {
    /// Construct from a profile.
    pub fn new(profile: JvmProfile, jit: JitConfig, scale: f64) -> Self {
        DacapoBench {
            profile,
            jit,
            scale,
        }
    }

    fn gen_thread(&self, thread: usize, seed: u64) -> Vec<JavaOp> {
        let p = &self.profile;
        let mut rng = SplitMix64::new(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9));
        let n = ((p.transactions as f64) * self.scale).ceil() as usize;
        let mut ops = Vec::with_capacity(n * 16);
        // Each thread works mostly on its own objects, sharing some.
        let heap_base = 0x4000 + (thread as u64) * 0x100;
        let shared_base = 0x8000;
        let frac = |rate: f64, rng: &mut SplitMix64| -> u32 {
            let whole = rate.floor() as u32;
            whole + u32::from(rng.chance(rate - rate.floor()))
        };
        for _ in 0..n {
            let w = (p.work_cycles as f64 * rng.jitter(0.2)) as u32;
            ops.push(JavaOp::Work(w / 2));
            for i in 0..p.field_loads {
                let loc = if rng.chance(0.2) {
                    Loc::SharedRw(shared_base + rng.next_below(64))
                } else {
                    Loc::Private(heap_base + i as u64 % 32)
                };
                ops.push(JavaOp::FieldLoad(loc));
            }
            for i in 0..p.field_stores {
                ops.push(JavaOp::FieldStore(Loc::Private(
                    heap_base + 32 + i as u64 % 16,
                )));
            }
            for _ in 0..frac(p.ref_stores, &mut rng) {
                // Shuffle/output buffers are mostly thread-affine; a minority
                // of reference stores hit genuinely shared structures.
                let line = if rng.chance(0.2) {
                    shared_base + 64 + rng.next_below(32)
                } else {
                    shared_base + 0x400 + ((thread as u64) << 8) + rng.next_below(96)
                };
                ops.push(JavaOp::RefStore(Loc::SharedRw(line)));
            }
            // Publish pattern: the volatile store follows the data writes
            // while they are still draining (this is exactly when a `stlr`
            // and a `dmb; str` differ).
            for _ in 0..frac(p.vstores, &mut rng) {
                ops.push(JavaOp::VolatileStore(Loc::SharedRw(
                    0x9000 + rng.next_below(8),
                )));
            }
            ops.push(JavaOp::Work(w / 2));
            for _ in 0..frac(p.vloads, &mut rng) {
                ops.push(JavaOp::VolatileLoad(Loc::SharedRw(
                    0x9000 + rng.next_below(8),
                )));
            }
            for _ in 0..frac(p.monitors, &mut rng) {
                let lock = rng.next_below(4);
                ops.push(JavaOp::MonitorEnter(lock));
                ops.push(JavaOp::Work(40));
                ops.push(JavaOp::MonitorExit(lock));
            }
            for _ in 0..frac(p.cas, &mut rng) {
                ops.push(JavaOp::Cas(Loc::SharedRw(0xA000 + rng.next_below(4))));
            }
            for _ in 0..frac(p.allocs, &mut rng) {
                ops.push(JavaOp::Alloc(4));
            }
        }
        ops
    }
}

impl DacapoBench {
    /// The raw per-thread Java operation streams for one sample — exposed
    /// so alternative lowerings (e.g. the optimisation-site-annotated IR of
    /// `wmm_jvm::optsites`) can consume the same workload.
    pub fn java_ops(&self, seed: u64) -> Vec<Vec<JavaOp>> {
        (0..self.profile.threads)
            .map(|t| self.gen_thread(t, seed))
            .collect()
    }
}

/// The same workload lowered with optimisation-site annotations
/// (`wmm_jvm::optsites::lower_with_optsites`): code paths are
/// [`wmm_jvm::optsites::JvmPath`] instead of plain combined barriers.
pub struct OptAnnotatedBench(pub DacapoBench);

impl BenchSpec<wmm_jvm::optsites::JvmPath> for OptAnnotatedBench {
    fn name(&self) -> &str {
        self.0.profile.name
    }

    fn image(&self, seed: u64) -> Image<wmm_jvm::optsites::JvmPath> {
        let ops = self.0.java_ops(seed);
        let segs = wmm_jvm::optsites::lower_with_optsites(&ops, &self.0.jit);
        let ctx = self.0.profile.ctx_for(self.0.jit.arch);
        let work = (self.0.profile.transactions as f64 * self.0.scale).ceil()
            * self.0.profile.threads as f64;
        Image {
            threads: segs,
            ctx: WorkloadCtx {
                name: self.0.profile.name.to_string(),
                bp_pressure: 0.55,
                load_pressure: ctx.load_pressure,
                l1_miss_rate: ctx.l1_miss_rate,
                dram_frac: ctx.dram_frac,
                noise_amp: ctx.noise_amp,
            },
            work_units: work,
        }
    }
}

impl BenchSpec<Combined> for DacapoBench {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn image(&self, seed: u64) -> Image<Combined> {
        let threads: Vec<Vec<JavaOp>> = (0..self.profile.threads)
            .map(|t| self.gen_thread(t, seed))
            .collect();
        let segs = lower(&threads, &self.jit);
        let ctx = self.profile.ctx_for(self.jit.arch);
        let work =
            (self.profile.transactions as f64 * self.scale).ceil() * self.profile.threads as f64;
        Image {
            threads: segs,
            ctx: WorkloadCtx {
                name: self.profile.name.to_string(),
                bp_pressure: 0.55,
                load_pressure: ctx.load_pressure,
                l1_miss_rate: ctx.l1_miss_rate,
                dram_frac: ctx.dram_frac,
                noise_amp: ctx.noise_amp,
            },
            work_units: work,
        }
    }
}

/// The full Fig. 5 suite bound to a JIT configuration.
pub fn dacapo_suite(jit: JitConfig, scale: f64) -> Vec<DacapoBench> {
    profiles()
        .into_iter()
        .map(|p| DacapoBench::new(p, jit, scale))
        .collect()
}

/// Look up a single profile by name.
pub fn profile(name: &str) -> Option<JvmProfile> {
    profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_jvm::barrier::Elemental;

    #[test]
    fn suite_has_the_eight_fig5_benchmarks() {
        let suite = dacapo_suite(JitConfig::jdk8(Arch::ArmV8), 0.2);
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "h2",
                "lusearch",
                "spark",
                "sunflow",
                "tomcat",
                "tradebeans",
                "tradesoap",
                "xalan"
            ]
        );
    }

    #[test]
    fn spark_is_the_most_site_dense() {
        let suite = dacapo_suite(JitConfig::jdk8(Arch::ArmV8), 0.3);
        let density = |b: &DacapoBench| {
            let img = b.image(7);
            let sites: u64 = img.site_counts().values().sum();
            let instrs: usize = img
                .threads
                .iter()
                .flatten()
                .map(|s| match s {
                    wmmbench::image::Segment::Code(v) => v.len(),
                    _ => 1,
                })
                .sum();
            sites as f64 / instrs as f64
        };
        let spark = suite.iter().find(|b| b.name() == "spark").unwrap();
        let spark_d = density(spark);
        for b in &suite {
            if b.name() != "spark" {
                assert!(density(b) < spark_d, "{} denser than spark", b.name());
            }
        }
    }

    #[test]
    fn spark_storestore_sites_dominate() {
        // Fig. 6: spark is most sensitive to StoreStore on both archs.
        let b = DacapoBench::new(
            profile("spark").unwrap(),
            JitConfig::jdk8(Arch::Power7),
            0.3,
        );
        let img = b.image(3);
        let counts = img.site_counts();
        let with = |e: Elemental| -> u64 {
            counts
                .iter()
                .filter(|(c, _)| c.contains(e))
                .map(|(_, n)| *n)
                .sum()
        };
        let ss = with(Elemental::StoreStore);
        let sl = with(Elemental::StoreLoad);
        let ll = with(Elemental::LoadLoad);
        assert!(ss > sl && ss > ll, "ss={ss} sl={sl} ll={ll}");
    }

    #[test]
    fn images_are_seed_deterministic() {
        let b = DacapoBench::new(profile("h2").unwrap(), JitConfig::jdk8(Arch::ArmV8), 0.2);
        let a = b.image(42);
        let c = b.image(42);
        assert_eq!(a.threads.len(), c.threads.len());
        assert_eq!(a.site_counts(), c.site_counts());
        // Different seeds differ in composition.
        let d = b.image(43);
        assert_ne!(a.site_counts(), d.site_counts());
    }

    #[test]
    fn scale_controls_image_size() {
        let small = DacapoBench::new(profile("h2").unwrap(), JitConfig::jdk8(Arch::ArmV8), 0.1);
        let large = DacapoBench::new(profile("h2").unwrap(), JitConfig::jdk8(Arch::ArmV8), 1.0);
        let n_small: u64 = small.image(1).site_counts().values().sum();
        let n_large: u64 = large.image(1).site_counts().values().sum();
        assert!(n_large > n_small * 5);
    }

    #[test]
    fn xalan_power_is_configured_unstable() {
        let p = profile("xalan").unwrap();
        assert!(p.power.noise_amp > 0.1);
        assert!(p.power.noise_amp > p.arm.noise_amp * 3.0);
    }
}
