//! The §4.3 Linux-kernel benchmark suite.
//!
//! Each benchmark composes [`wmm_kernel::Service`] hot paths with user-space
//! work at rates chosen to reproduce the paper's rankings and sensitivities:
//! the netperf pair and lmbench are the most macro-sensitive (Fig. 8),
//! `netperf_udp` has the highest `read_barrier_depends` sensitivity and
//! `osm_stack` the lowest (Fig. 9), netperf TCP is unstable, and the JVM
//! benchmarks inherited from §4.2 (h2, spark, xalan) coordinate their
//! concurrency inside the VM and hence barely touch kernel macros.

use wmm_kernel::macros::KMacro;
use wmm_kernel::services::Service;
use wmm_sim::isa::Instr;
use wmm_sim::machine::WorkloadCtx;
use wmm_sim::SplitMix64;
use wmmbench::image::{Image, Segment};
use wmmbench::runner::BenchSpec;

/// A kernel benchmark profile.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Name as printed in Figs. 8–10.
    pub name: &'static str,
    /// Concurrent threads (client/server pairs, worker pools…).
    pub threads: usize,
    /// Requests (packets, syscall iterations, page bursts) per thread at
    /// scale 1.0.
    pub requests: usize,
    /// User-space work per request, cycles.
    pub user_cycles: u32,
    /// Kernel services invoked per request, with fractional rates.
    pub services: Vec<(Service, f64)>,
    /// Run-level noise amplitude (stability).
    pub noise_amp: f64,
    /// Load-queue pressure at fence sites: ~1.0 for syscall-dense lmbench
    /// (which is what makes `dmb ishld` expensive there), ~0.1 elsewhere.
    pub load_pressure: f64,
    /// Branch-predictor pressure: ~0.25 in the lmbench loops, ~0.6 in real
    /// applications — the source of the `ctrl` strategy's micro/macro
    /// divergence (§4.3.1).
    pub bp_pressure: f64,
    /// L1 miss rate on private data.
    pub l1_miss_rate: f64,
}

/// The full suite of §4.3, in Fig. 8's sensitivity order.
pub fn kernel_profiles() -> Vec<KernelProfile> {
    use Service::*;
    vec![
        KernelProfile {
            name: "netperf_tcp",
            threads: 2,
            requests: 260,
            user_cycles: 1400,
            services: vec![
                (NetTx, 1.0),
                (NetRx, 1.0),
                (Syscall, 2.0),
                (SchedWakeup, 3.0),
            ],
            noise_amp: 0.08,
            load_pressure: 0.08,
            bp_pressure: 0.55,
            l1_miss_rate: 0.03,
        },
        KernelProfile {
            name: "lmbench",
            threads: 1,
            requests: 650,
            user_cycles: 290,
            services: vec![(Syscall, 1.0)],
            noise_amp: 0.01,
            load_pressure: 1.0,
            bp_pressure: 0.25,
            l1_miss_rate: 0.01,
        },
        KernelProfile {
            name: "netperf_udp",
            threads: 2,
            requests: 300,
            user_cycles: 280,
            services: vec![(NetTx, 1.0), (NetRx, 1.0), (Syscall, 1.0)],
            noise_amp: 0.025,
            load_pressure: 0.08,
            bp_pressure: 0.55,
            l1_miss_rate: 0.03,
        },
        KernelProfile {
            name: "ebizzy",
            threads: 8,
            requests: 140,
            user_cycles: 1150,
            services: vec![(PageAlloc, 2.0), (RcuRead, 0.3)],
            noise_amp: 0.05,
            load_pressure: 0.08,
            bp_pressure: 0.6,
            l1_miss_rate: 0.08,
        },
        KernelProfile {
            name: "xalan",
            threads: 8,
            requests: 90,
            user_cycles: 3000,
            services: vec![(Syscall, 0.4), (SchedWakeup, 0.2)],
            noise_amp: 0.03,
            load_pressure: 0.12,
            bp_pressure: 0.6,
            l1_miss_rate: 0.04,
        },
        KernelProfile {
            name: "osm_stack",
            threads: 4,
            requests: 40,
            user_cycles: 30_000,
            services: vec![(Syscall, 1.0), (NetTx, 1.0), (NetRx, 1.0), (VfsRead, 1.0)],
            noise_amp: 0.04,
            load_pressure: 0.15,
            bp_pressure: 0.6,
            l1_miss_rate: 0.05,
        },
        KernelProfile {
            name: "osm_tiles",
            threads: 4,
            requests: 35,
            user_cycles: 22_000,
            services: vec![(VfsRead, 0.5), (DeviceIo, 0.2), (Syscall, 0.5)],
            noise_amp: 0.03,
            load_pressure: 0.12,
            bp_pressure: 0.6,
            l1_miss_rate: 0.05,
        },
        KernelProfile {
            name: "kernel_compile",
            threads: 8,
            requests: 45,
            user_cycles: 18_000,
            services: vec![
                (Syscall, 1.5),
                (VfsRead, 0.5),
                (PageAlloc, 0.3),
                (DeviceIo, 0.1),
            ],
            noise_amp: 0.02,
            load_pressure: 0.15,
            bp_pressure: 0.6,
            l1_miss_rate: 0.04,
        },
        KernelProfile {
            name: "spark",
            threads: 8,
            requests: 70,
            user_cycles: 8000,
            services: vec![(Syscall, 0.2)],
            noise_amp: 0.02,
            load_pressure: 0.12,
            bp_pressure: 0.55,
            l1_miss_rate: 0.03,
        },
        KernelProfile {
            name: "h2",
            threads: 4,
            requests: 75,
            user_cycles: 9000,
            services: vec![(Syscall, 0.15)],
            noise_amp: 0.02,
            load_pressure: 0.12,
            bp_pressure: 0.55,
            l1_miss_rate: 0.03,
        },
    ]
}

/// A runnable kernel benchmark.
pub struct KernelBench {
    /// The profile.
    pub profile: KernelProfile,
    /// Image-size multiplier.
    pub scale: f64,
}

impl KernelBench {
    /// Construct from a profile.
    pub fn new(profile: KernelProfile, scale: f64) -> Self {
        KernelBench { profile, scale }
    }

    fn gen_thread(&self, thread: usize, seed: u64) -> Vec<Segment<KMacro>> {
        let p = &self.profile;
        let mut rng = SplitMix64::new(seed ^ (thread as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let n = ((p.requests as f64) * self.scale).ceil() as usize;
        let mut segs: Vec<Segment<KMacro>> = Vec::with_capacity(n * 8);
        for _ in 0..n {
            let w = (p.user_cycles as f64 * rng.jitter(0.25)) as u32;
            segs.push(Segment::Code(vec![Instr::Compute { cycles: w }]));
            for &(service, rate) in &p.services {
                let count = rate.floor() as u32 + u32::from(rng.chance(rate - rate.floor()));
                for _ in 0..count {
                    service.emit(&mut segs, &mut rng);
                }
            }
        }
        segs
    }
}

impl BenchSpec<KMacro> for KernelBench {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn image(&self, seed: u64) -> Image<KMacro> {
        let threads: Vec<Vec<Segment<KMacro>>> = (0..self.profile.threads)
            .map(|t| self.gen_thread(t, seed))
            .collect();
        let work = (self.profile.requests as f64 * self.scale).ceil() * self.profile.threads as f64;
        Image {
            threads,
            ctx: WorkloadCtx {
                name: self.profile.name.to_string(),
                bp_pressure: self.profile.bp_pressure,
                load_pressure: self.profile.load_pressure,
                l1_miss_rate: self.profile.l1_miss_rate,
                dram_frac: 0.2,
                noise_amp: self.profile.noise_amp,
            },
            work_units: work,
        }
    }
}

/// The full kernel suite at a given scale.
pub fn kernel_suite(scale: f64) -> Vec<KernelBench> {
    kernel_profiles()
        .into_iter()
        .map(|p| KernelBench::new(p, scale))
        .collect()
}

/// Look up one kernel profile by name.
pub fn kernel_profile(name: &str) -> Option<KernelProfile> {
    kernel_profiles().into_iter().find(|p| p.name == name)
}

/// The lmbench sub-benchmarks the paper aggregates by arithmetic mean:
/// each is the base syscall loop with a per-test service mix.
pub fn lmbench_subs(scale: f64) -> Vec<KernelBench> {
    use Service::*;
    let base = kernel_profile("lmbench").expect("lmbench profile exists");
    let sub = |name: &'static str, user: u32, services: Vec<(Service, f64)>| {
        let mut p = base.clone();
        p.name = name;
        p.user_cycles = user;
        p.services = services;
        KernelBench::new(p, scale)
    };
    vec![
        sub("fcntl", 250, vec![(Syscall, 1.0)]),
        sub(
            "proc_exec",
            2200,
            vec![(Syscall, 2.0), (PageAlloc, 3.0), (VfsRead, 2.0)],
        ),
        sub(
            "proc_fork",
            1800,
            vec![(Syscall, 1.0), (PageAlloc, 3.0), (SchedWakeup, 1.0)],
        ),
        sub("select_100", 900, vec![(Syscall, 1.0), (VfsRead, 2.0)]),
        sub("sem", 300, vec![(Syscall, 1.0), (SchedWakeup, 1.0)]),
        sub("sig_catch", 450, vec![(Syscall, 1.0), (SchedWakeup, 0.5)]),
        sub("sig_install", 260, vec![(Syscall, 1.0)]),
        sub("syscall_fstat", 280, vec![(Syscall, 1.0), (VfsRead, 0.5)]),
        sub("syscall_null", 180, vec![(Syscall, 1.0)]),
        sub(
            "syscall_open",
            500,
            vec![(Syscall, 1.0), (VfsRead, 1.0), (RcuRead, 1.0)],
        ),
        sub("syscall_read", 350, vec![(Syscall, 1.0), (VfsRead, 1.0)]),
        sub("syscall_write", 350, vec![(Syscall, 1.0), (VfsRead, 0.5)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_fig8_composition() {
        let suite = kernel_suite(0.2);
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 10);
        for expected in [
            "netperf_tcp",
            "lmbench",
            "netperf_udp",
            "ebizzy",
            "xalan",
            "osm_stack",
            "osm_tiles",
            "kernel_compile",
            "spark",
            "h2",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn netperf_udp_is_most_rbd_dense() {
        // Fig. 9: netperf_udp has the highest read_barrier_depends
        // sensitivity; rbd sites per instruction must dominate.
        let density = |b: &KernelBench| {
            let img = b.image(5);
            let rbd = img
                .site_counts()
                .get(&KMacro::ReadBarrierDepends)
                .copied()
                .unwrap_or(0);
            // Approximate execution weight: Compute blocks by their cycle
            // count, everything else as a few cycles.
            let cycles: f64 = img
                .threads
                .iter()
                .flatten()
                .map(|s| match s {
                    Segment::Code(v) => v
                        .iter()
                        .map(|i| match i {
                            Instr::Compute { cycles } => *cycles as f64,
                            _ => 4.0,
                        })
                        .sum::<f64>(),
                    _ => 8.0,
                })
                .sum();
            rbd as f64 / cycles
        };
        let suite = kernel_suite(0.2);
        let udp = suite.iter().find(|b| b.name() == "netperf_udp").unwrap();
        let udp_d = density(udp);
        for b in &suite {
            if b.name() != "netperf_udp" {
                assert!(
                    density(b) < udp_d,
                    "{} denser in rbd than netperf_udp",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn jvm_benchmarks_barely_touch_the_kernel() {
        let suite = kernel_suite(0.3);
        let sites = |name: &str| -> u64 {
            suite
                .iter()
                .find(|b| b.name() == name)
                .unwrap()
                .image(1)
                .site_counts()
                .values()
                .sum()
        };
        assert!(sites("h2") < sites("netperf_udp") / 10);
        assert!(sites("spark") < sites("netperf_udp") / 10);
    }

    #[test]
    fn lmbench_has_hot_load_queue_and_cold_branches() {
        let p = kernel_profile("lmbench").unwrap();
        assert!(p.load_pressure > 0.9, "syscall-dense load queue");
        assert!(p.bp_pressure < 0.3, "tight loops predict well");
        // Macro applications are the opposite.
        let tcp = kernel_profile("netperf_tcp").unwrap();
        assert!(tcp.bp_pressure > 0.5);
        assert!(tcp.load_pressure < 0.5);
    }

    #[test]
    fn twelve_lmbench_subs() {
        let subs = lmbench_subs(0.2);
        assert_eq!(subs.len(), 12);
        let names: Vec<&str> = subs.iter().map(|b| b.name()).collect();
        assert!(names.contains(&"syscall_null"));
        assert!(names.contains(&"proc_fork"));
    }

    #[test]
    fn images_deterministic_per_seed() {
        let b = KernelBench::new(kernel_profile("ebizzy").unwrap(), 0.2);
        assert_eq!(b.image(9).site_counts(), b.image(9).site_counts());
        assert_ne!(b.image(9).site_counts(), b.image(10).site_counts());
    }

    #[test]
    fn netperf_tcp_is_unstable() {
        let tcp = kernel_profile("netperf_tcp").unwrap();
        let udp = kernel_profile("netperf_udp").unwrap();
        assert!(tcp.noise_amp > udp.noise_amp * 2.0);
    }
}
