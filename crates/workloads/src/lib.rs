//! # wmm-workloads
//!
//! Synthetic workload generators reproducing the *observable
//! characteristics* of the paper's benchmark suites:
//!
//! * [`dacapo`] — the concurrent DaCapo 9.12 subset (h2, lusearch, sunflow,
//!   tomcat, tradebeans, tradesoap, xalan, selected per Kalibera et al.) plus
//!   the Apache Spark GraphX PageRank workload of §4.2, as Java-operation
//!   streams for the `wmm-jvm` platform;
//! * [`kernel`] — the §4.3 suite: kernel compilation, netperf TCP/UDP over
//!   loopback, ebizzy, the OSM tile-server stack, the lmbench
//!   microbenchmark subset, and the three JVM benchmarks re-used as
//!   kernel-insensitive controls.
//!
//! The methodology treats benchmarks as black boxes characterised by their
//! *sensitivity* to each code path, their *stability*, and their pipeline
//! context. Profiles here are tuned so that the same sweep-and-fit pipeline
//! the paper runs recovers sensitivities near the published values (Fig. 5:
//! spark ≈ 0.009/0.012; Fig. 9: netperf_udp ≈ 0.009, osm ≈ 0.0002), with
//! the published instabilities (xalan on POWER, netperf TCP) appearing as
//! seeded noise. Absolute magnitudes are calibrated; *orderings and
//! divergences are emergent* from the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dacapo;
pub mod kernel;

pub use dacapo::{dacapo_suite, DacapoBench, JvmProfile};
pub use kernel::{kernel_suite, lmbench_subs, KernelBench, KernelProfile};
