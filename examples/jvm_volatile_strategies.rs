//! Compare volatile-variable implementation strategies on ARMv8, the JDK8
//! vs JDK9 question of §4.2: explicit `dmb` barriers
//! (`-XX:+UseBarriersForVolatile`) versus load-acquire/store-release
//! instructions, across the whole concurrent-DaCapo suite — plus the
//! pending DMB-elimination locking patch under both modes.
//!
//! Run with: `cargo run --release --example jvm_volatile_strategies`

use wmm::wmm_jvm::barrier::all_site_combinations;
use wmm::wmm_jvm::jit::{JitConfig, VolatileMode};
use wmm::wmm_sim::arch::{armv8_xgene1, Arch};
use wmm::wmm_sim::Machine;
use wmm::wmm_stats::Comparison;
use wmm::wmm_workloads::dacapo::{dacapo_suite, profile, DacapoBench};
use wmm::wmmbench::image::{compute_envelope, Injection, SiteRewriter};
use wmm::wmmbench::runner::{measure, RunConfig};
use wmm::wmmbench::strategy::FencingStrategy;

fn main() {
    let machine = Machine::new(armv8_xgene1());
    let strategy = wmm::wmm_jvm::strategy::arm_jdk8_barriers();
    let env = compute_envelope(
        &all_site_combinations(),
        &[&strategy as &dyn FencingStrategy<_>],
        3,
    );
    let rw = SiteRewriter::new(&strategy, Injection::None, env);
    let cfg = RunConfig::default();

    println!("JDK9 ld.acq/st.rel vs JDK8 barriers on ARMv8 (positive = JDK9 faster)\n");
    let jdk8 = dacapo_suite(JitConfig::jdk8(Arch::ArmV8), 0.5);
    let jdk9 = dacapo_suite(JitConfig::jdk9(Arch::ArmV8), 0.5);
    for (b8, b9) in jdk8.iter().zip(&jdk9) {
        let base = measure(&machine, b8, &rw, cfg);
        let test = measure(&machine, b9, &rw, cfg);
        let cmp = Comparison::of_times(&test.times_ns, &base.times_ns);
        let marker = if cmp.significant() { "*" } else { " " };
        println!(
            "  {:<11} {:+5.1}% {marker}  [{:.3}, {:.3}]",
            b8.profile.name,
            cmp.percent_change(),
            cmp.min,
            cmp.max
        );
    }
    println!("\n  (* = significant under the compounded min/max rule)");

    println!("\nDMB-elimination locking patch on spark:");
    for (label, mode) in [
        ("with ld.acq/st.rel", VolatileMode::LoadAcquireStoreRelease),
        ("with barriers     ", VolatileMode::Barriers),
    ] {
        let mk = |patched| {
            DacapoBench::new(
                profile("spark").unwrap(),
                JitConfig {
                    arch: Arch::ArmV8,
                    volatile_mode: mode,
                    locking_patch: patched,
                },
                0.5,
            )
        };
        let base = measure(&machine, &mk(false), &rw, cfg);
        let test = measure(&machine, &mk(true), &rw, cfg);
        let cmp = Comparison::of_times(&test.times_ns, &base.times_ns);
        println!("  {label} {:+5.1}%", cmp.percent_change());
    }
    println!("\nThe paper: the patch helps (+2.9%) with ld.acq/st.rel but hurts (-1%)");
    println!("with barriers — 'subtle interactions between load-acquire/store-release");
    println!("and dmb instructions which require further investigation.'");
}
