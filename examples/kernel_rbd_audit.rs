//! Audit the kernel's `read_barrier_depends` options (Fig. 10): if ARM
//! speculation someday requires a real fencing strategy for dependent
//! reads, which implementation should the kernel adopt?
//!
//! Run with: `cargo run --release --example kernel_rbd_audit`

use wmm::wmm_kernel::macros::KMacro;
use wmm::wmm_kernel::rbd::{rbd_strategy, RbdStrategy};
use wmm::wmm_sim::arch::armv8_xgene1;
use wmm::wmm_sim::Machine;
use wmm::wmm_stats::Comparison;
use wmm::wmm_workloads::kernel::{kernel_profile, KernelBench};
use wmm::wmmbench::costfn::CostFunction;
use wmm::wmmbench::image::{compute_envelope, Injection, SiteRewriter};
use wmm::wmmbench::runner::{measure, RunConfig};
use wmm::wmmbench::strategy::FencingStrategy;

fn main() {
    let machine = Machine::new(armv8_xgene1());
    let cfg = RunConfig::default();

    // Envelope covering all six strategies plus the injectable cost function.
    let strategies: Vec<_> = RbdStrategy::ALL.iter().map(|s| rbd_strategy(*s)).collect();
    let refs: Vec<&dyn FencingStrategy<KMacro>> = strategies
        .iter()
        .map(|s| s as &dyn FencingStrategy<KMacro>)
        .collect();
    let env = compute_envelope(
        KMacro::ALL.as_ref(),
        &refs,
        CostFunction {
            iters: 1,
            stack_spill: true,
        }
        .size(),
    );

    let benches: Vec<KernelBench> = ["netperf_udp", "lmbench", "osm_stack", "ebizzy"]
        .iter()
        .map(|n| KernelBench::new(kernel_profile(n).unwrap(), 0.5))
        .collect();

    let base = rbd_strategy(RbdStrategy::BaseCase);
    let base_rw = SiteRewriter::new(&base, Injection::None, env.clone());
    let bases: Vec<_> = benches
        .iter()
        .map(|b| measure(&machine, b, &base_rw, cfg))
        .collect();

    println!("read_barrier_depends strategies vs nop-padded base case (%):\n");
    print!("{:<12}", "strategy");
    for b in &benches {
        print!("{:>14}", b.profile.name);
    }
    println!();
    for s in RbdStrategy::ALL.iter().skip(1) {
        let strat = rbd_strategy(*s);
        let rw = SiteRewriter::new(&strat, Injection::None, env.clone());
        print!("{:<12}", s.label());
        for (b, base_m) in benches.iter().zip(&bases) {
            let t = measure(&machine, b, &rw, cfg);
            let cmp = Comparison::of_times(&t.times_ns, &base_m.times_ns);
            print!("{:>+13.1}%", cmp.percent_change());
        }
        println!();
    }

    println!();
    println!("The paper's verdict (§4.3.1): introducing isb is unreasonable due to its");
    println!("effect on the processor pipeline; if ordering is required, dmb ishld or");
    println!("dmb ish represent the best-case scenarios — and dmb ishld's guarantees are");
    println!("stronger than a bare control dependency, 'a particularly positive result'.");
}
