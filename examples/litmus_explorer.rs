//! Explore classic litmus tests under the four memory models — the
//! semantic side of every fencing-strategy decision. Before asking "is the
//! cheaper fence fast?", the systems programmer must know it is *correct*;
//! this explorer answers that question exhaustively for small programs.
//!
//! Run with: `cargo run --release --example litmus_explorer`

use wmm::wmm_litmus::suite::full_suite;
use wmm::wmm_litmus::{explore, ModelKind};

fn main() {
    let models = [
        ModelKind::Sc,
        ModelKind::Tso,
        ModelKind::ArmV8,
        ModelKind::Power,
    ];
    println!(
        "{:<20} {:>6} {:>6} {:>6} {:>6}   (weak outcome observable?)",
        "test", "SC", "TSO", "ARMv8", "POWER"
    );
    for entry in full_suite() {
        print!("{:<20}", entry.test.name);
        for model in models {
            let out = explore(&entry.test, model);
            let observable = out.allows(&entry.test.interesting);
            let expected = entry
                .expect
                .iter()
                .find(|(m, _)| *m == model)
                .map(|&(_, e)| e);
            let cell = match (observable, expected) {
                (true, Some(true)) | (false, Some(false)) => {
                    if observable { "yes" } else { "no" }.to_string()
                }
                (obs, Some(_)) => format!("{}!", if obs { "yes" } else { "no" }),
                (obs, None) => format!("({})", if obs { "yes" } else { "no" }),
            };
            print!(" {cell:>6}");
        }
        println!();
    }
    println!();
    println!("yes/no = matches the recorded expectation; (…) = no expectation recorded;");
    println!("! would mark a violation. Highlights:");
    println!("  * SB needs a full fence even on TSO — lwsync cannot fix it (6.1 ns saved,");
    println!("    correctness lost).");
    println!("  * MP on ARMv8 is fixed by dmb ishst + an address dependency — the cheap");
    println!("    strategy is sound there, but NOT on non-multi-copy-atomic POWER.");
    println!("  * Control dependencies order dependent stores, not loads: ctrl alone is");
    println!("    not a read_barrier_depends; ctrl+isb and dmb ishld are (Fig. 10).");
    println!("  * IRIW distinguishes the models: forbidden with addr deps on ARMv8 (MCA),");
    println!("    observable on POWER unless full syncs are used.");
}
