//! Quickstart: measure how sensitive a benchmark is to a platform's fencing
//! strategy, exactly as §3 of the paper prescribes.
//!
//! 1. Calibrate a cost function on the target machine (Fig. 4).
//! 2. Sweep its size, injected into every barrier the platform emits.
//! 3. Fit the sensitivity model `p = 1/((1-k) + k·a)` (Eq. 1).
//! 4. Use the fitted `k` to convert a real fencing-strategy change into an
//!    equivalent per-invocation cost in ns (Eq. 2).
//!
//! Run with: `cargo run --release --example quickstart`

use wmm::wmm_jvm::jit::JitConfig;
use wmm::wmm_jvm::strategy::power_storestore_as_sync;
use wmm::wmm_sim::arch::{power7, Arch};
use wmm::wmm_sim::Machine;
use wmm::wmm_workloads::dacapo::{profile, DacapoBench};
use wmm::wmmbench::costfn::Calibration;
use wmm::wmmbench::image::{Injection, SiteRewriter};
use wmm::wmmbench::model::estimate_cost;
use wmm::wmmbench::runner::{measure_relative, RunConfig};
use wmm::wmmbench::sensitivity::{pow2_targets, sweep, SweepTarget};

fn main() {
    // The machine: a POWER7-like multicore (12 cores @ 3.7 GHz).
    let machine = Machine::new(power7());

    // The platform: OpenJDK's POWER fencing strategy (StoreLoad -> sync,
    // everything else -> lwsync).
    let strategy = wmm::wmm_jvm::strategy::power_jdk9();

    // The benchmark: the Spark PageRank workload of §4.2.
    let bench = DacapoBench::new(
        profile("spark").expect("spark profile"),
        JitConfig::jdk8(Arch::Power7),
        0.5,
    );

    // 1. Calibrate the spin-loop cost function.
    let cal = Calibration::measure(&machine, true, 12);
    println!(
        "cost function: 1 iter = {:.1} ns, 1024 iters = {:.1} ns",
        cal.ns_for_iters(1),
        cal.ns_for_iters(1024)
    );

    // 2–3. Sweep and fit.
    let env = wmm_bench_envelope(&strategy);
    let cfg = RunConfig::default();
    let result = sweep(
        &machine,
        &bench,
        &strategy,
        SweepTarget::AllSites,
        &cal,
        &pow2_targets(0, 8),
        env.clone(),
        cfg,
    );
    let fit = result.fit.expect("fit converges");
    println!("spark sensitivity to all barriers: {}", fit.display());
    println!("(the paper measures k = 0.01227 ±7% on POWER7)");

    // 4. A real change: StoreStore from lwsync to sync (§4.2.1).
    let modified = power_storestore_as_sync();
    let base_rw = SiteRewriter::new(&strategy, Injection::None, env.clone());
    let test_rw = SiteRewriter::new(&modified, Injection::None, env);
    let cmp = measure_relative(&machine, &bench, &base_rw, &test_rw, cfg);
    println!(
        "StoreStore lwsync -> sync: relative performance {:.4} ({:+.1}%)",
        cmp.ratio,
        cmp.percent_change()
    );
    println!(
        "equivalent cost per invocation (Eq. 2): {:.1} ns",
        estimate_cost(fit.k, cmp.ratio)
    );
    println!("(the paper observes -12.5%, computing 11.7 ns over lwsync)");
}

/// Envelope covering the base strategy, the sync modification and the
/// 5-word (stack-spilling) cost function.
fn wmm_bench_envelope(
    strategy: &dyn wmm::wmmbench::strategy::FencingStrategy<wmm::wmm_jvm::barrier::Combined>,
) -> std::collections::HashMap<wmm::wmm_jvm::barrier::Combined, u64> {
    let modified = power_storestore_as_sync();
    wmm::wmmbench::image::compute_envelope(
        &wmm::wmm_jvm::barrier::all_site_combinations(),
        &[strategy, &modified],
        5,
    )
}
