//! # wmm — umbrella crate
//!
//! Re-exports the full `wmmbench` workspace, the Rust reproduction of
//! *Benchmarking Weak Memory Models* (Ritson & Owens, PPoPP 2016).
//!
//! The individual crates are:
//!
//! * [`wmm_stats`] — curve fitting, Student-t intervals, summary statistics.
//! * [`wmm_sim`] — deterministic timing simulator of weak-memory multicores.
//! * [`wmm_litmus`] — operational semantics explorer and litmus suite.
//! * [`wmm_analyze`] — static fence-placement analysis: Shasha–Snir
//!   critical cycles, per-model protection checks, redundant-fence lints,
//!   diy-style litmus-test generation.
//! * [`wmm_axiom`] — axiomatic second oracle: candidate executions judged
//!   by relational acyclicity axioms, differentially tested against the
//!   operational explorer.
//! * [`wmmbench`] — the paper's methodology: cost functions, injection,
//!   sensitivity modelling, cost estimation and rankings.
//! * [`wmm_jvm`] — Hotspot-like platform (elemental barriers, JDK8/9
//!   fencing strategies).
//! * [`wmm_kernel`] — Linux-kernel-like platform (barrier macros,
//!   `read_barrier_depends` strategies).
//! * [`wmm_dstruct`] — lock-free data-structure platform (Treiber stack,
//!   Harris-Michael list) under NR/EBR/HP reclamation schemes.
//! * [`wmm_workloads`] — DaCapo-, Spark- and kernel-suite-like workloads.
//! * [`wmm_harness`] — parallel experiment engine: deterministic
//!   scheduler, result cache, run manifests and the regression gate.
//! * [`wmm_obs`] — zero-cost-when-disabled observability: typed event
//!   streams, per-site stall profiles, collapsed-stack export.
//! * [`wmm_bench`] — experiment drivers regenerating every paper artefact.

pub use wmm_analyze;
pub use wmm_axiom;
pub use wmm_bench;
pub use wmm_dstruct;
pub use wmm_harness;
pub use wmm_jvm;
pub use wmm_kernel;
pub use wmm_litmus;
pub use wmm_obs;
pub use wmm_sim;
pub use wmm_stats;
pub use wmm_workloads;
pub use wmmbench;
