//! Integration tests for the data-structure reclamation campaign: the
//! `fig_dstruct` manifest must be byte-identical whatever the worker
//! count, across reruns, and its ranking must be non-trivial (the scheme
//! order is a measured result, not an artifact of the harness).

use wmm::wmm_bench::{fig_dstruct_manifest_with, ExpConfig};
use wmm::wmm_harness::ParallelExecutor;
use wmm::wmmbench::exec::{Executor, SerialExecutor};

/// The campaign's gate-inspected manifest text through `exec`.
fn manifest_text(exec: &dyn Executor) -> String {
    let (manifest, sweeps, ranking) = fig_dstruct_manifest_with(ExpConfig::quick(), exec);
    assert!(!sweeps.is_empty(), "campaign must sweep every benchmark");
    assert_eq!(ranking.len(), 3, "ebr, hp-dmb, hp-asym vs the nr baseline");
    manifest.canonical_json().to_string_pretty()
}

#[test]
fn fig_dstruct_manifest_identical_across_thread_counts_and_reruns() {
    // The headline harness contract extends to the dstruct campaign: the
    // canonical manifest CI gates against a committed baseline is
    // byte-identical whether the campaign ran serially, on one worker, or
    // on four, and across reruns of the same executor.
    let reference = manifest_text(&SerialExecutor);
    for threads in [1, 4] {
        let exec = ParallelExecutor::new(Some(threads));
        assert_eq!(manifest_text(&exec), reference, "threads = {threads}");
        assert_eq!(
            manifest_text(&exec),
            reference,
            "rerun, threads = {threads}"
        );
    }
}

#[test]
fn fig_dstruct_ranking_is_nontrivial() {
    // Somewhere in the suite an amortising scheme must beat the
    // per-protect fence, and the unsafe baseline must not lose to any
    // scheme by an implausible margin — both are Eq. 1 predictions, and
    // both are what the fig_dstruct binary's exit code asserts in CI.
    let (_, _, ranking) = fig_dstruct_manifest_with(ExpConfig::quick(), &SerialExecutor);
    let ratio = |scheme: &str, bench: &str| {
        ranking
            .iter()
            .find(|(s, _)| s == scheme)
            .and_then(|(_, ds)| ds.iter().find(|d| d.bench == bench))
            .map(|d| d.cmp.ratio)
            .expect("every scheme ranks every benchmark")
    };
    let benches: Vec<String> = ranking[0].1.iter().map(|d| d.bench.clone()).collect();
    assert!(
        benches.iter().any(|b| {
            let dmb = ratio("hp-dmb", b);
            ratio("hp-asym", b) > dmb || ratio("ebr", b) > dmb
        }),
        "an amortising scheme must beat hp-dmb somewhere"
    );
    for (scheme, deltas) in &ranking {
        for d in deltas {
            assert!(
                d.cmp.ratio > 0.5 && d.cmp.ratio < 1.05,
                "{scheme}/{}: ratio {} outside plausible range",
                d.bench,
                d.cmp.ratio
            );
        }
    }
}
