//! Tests for the implemented future-work extensions: the SC-preserving
//! strategy comparison (§5), the JIT optimisation-site annotation and the
//! turnkey evaluation system (both from the paper's conclusion).

use wmm::wmm_bench::{machine, sc_strategy_experiment, ExpConfig};
use wmm::wmm_jvm::jit::JitConfig;
use wmm::wmm_jvm::optsites::{JvmPath, OptAwareStrategy, OptPass};
use wmm::wmm_kernel::macros::default_arm_strategy;
use wmm::wmm_sim::arch::Arch;
use wmm::wmm_workloads::dacapo::{profile, DacapoBench, OptAnnotatedBench};
use wmm::wmm_workloads::kernel::{kernel_profile, KernelBench};
use wmm::wmmbench::runner::{BenchSpec, RunConfig};
use wmm::wmmbench::turnkey::{evaluate, Usability};

fn cfg() -> ExpConfig {
    ExpConfig {
        scale: 0.3,
        run: RunConfig {
            samples: 3,
            warmups: 1,
            base_seed: 0x1CEB00DA,
        },
    }
}

#[test]
fn sc_strategy_sits_between_marinos_bounds() {
    // §5: ARM might fit within Marino's 34% maximum slowdown, but their
    // 3.8% x86 mean "is unlikely to be replicated".
    let rows = sc_strategy_experiment(cfg());
    let drops: Vec<f64> = rows.iter().map(|r| -r.cmp.percent_change()).collect();
    let mean = drops.iter().sum::<f64>() / drops.len() as f64;
    let worst = drops.iter().cloned().fold(0.0, f64::max);
    assert!(worst < 34.0, "worst {worst}% exceeds Marino's bound");
    assert!(
        mean > 3.8,
        "mean {mean}% should exceed the x86 mean on a weaker model"
    );
    // The kernel-insensitive JVM benchmarks barely notice even full SC.
    let h2 = rows.iter().find(|r| r.bench == "h2").unwrap();
    assert!(-h2.cmp.percent_change() < 1.0);
}

#[test]
fn optsite_sensitivities_track_what_each_pass_touches() {
    let arch = Arch::ArmV8;
    let m = machine(arch);
    let inner = wmm::wmm_bench::jvm_base_strategy(arch);
    let strategy = OptAwareStrategy::new(&inner);
    let bench = OptAnnotatedBench(DacapoBench::new(
        profile("spark").unwrap(),
        JitConfig::jdk8(arch),
        0.3,
    ));
    let cal = wmm::wmmbench::costfn::Calibration::measure(&m, false, 10);
    let paths = bench.image(1).paths();
    let env = wmm::wmmbench::image::compute_envelope(
        &paths,
        &[&strategy as &dyn wmm::wmmbench::strategy::FencingStrategy<JvmPath>],
        3,
    );
    let k_of = |pass: OptPass| {
        wmm::wmmbench::sensitivity::sweep(
            &m,
            &bench,
            &strategy,
            wmm::wmmbench::sensitivity::SweepTarget::Path(JvmPath::Opt(pass)),
            &cal,
            &wmm::wmmbench::sensitivity::pow2_targets(0, 8),
            env.clone(),
            RunConfig::quick(),
        )
        .fit
        .map(|f| f.k)
        .unwrap_or(0.0)
    };
    // spark holds far more monitor operations than volatile loads, so lock
    // elision has far more headroom than redundant-volatile-load removal.
    let lock = k_of(OptPass::LockElision);
    let vload = k_of(OptPass::RedundantVolatileLoad);
    let escape = k_of(OptPass::EscapeAnalysis);
    assert!(lock > 5.0 * vload, "lock {lock} vs vload {vload}");
    assert!(escape > vload, "escape {escape} vs vload {vload}");
}

#[test]
fn turnkey_identifies_rbd_and_smp_mb_as_netperfs_hot_paths() {
    let m = machine(Arch::ArmV8);
    let strategy = default_arm_strategy();
    let bench = KernelBench::new(kernel_profile("netperf_udp").unwrap(), 0.25);
    let report = evaluate(
        &m,
        &bench,
        &strategy,
        true,
        8,
        Usability::default(),
        RunConfig::quick(),
    );
    assert_eq!(report.benchmark, "netperf_udp");
    assert!(report.paths.len() >= 5, "paths: {}", report.paths.len());
    // The two most sensitive paths are the RCU dereference and the full
    // barrier, matching the Fig. 7 ranking for this benchmark.
    let top2: Vec<&str> = report.paths[..2].iter().map(|p| p.path.as_str()).collect();
    assert!(top2.contains(&"ReadBarrierDepends"), "{top2:?}");
    assert!(top2.contains(&"SmpMb"), "{top2:?}");
    let hottest = report.hottest_usable().expect("usable path exists");
    assert!(hottest.fit.as_ref().unwrap().k > 0.004);
    // Sensitivity ranking is descending.
    let ks: Vec<f64> = report
        .paths
        .iter()
        .map(|p| p.fit.as_ref().map(|f| f.k).unwrap_or(0.0))
        .collect();
    for w in ks.windows(2) {
        assert!(w[0] >= w[1] - 1e-9, "not sorted: {ks:?}");
    }
}
