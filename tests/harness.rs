//! Integration tests for the wmm-harness execution layer: parallel
//! determinism (the headline contract — worker count never changes a byte
//! of experiment output), result caching, run manifests and the regression
//! gate.

use proptest::prelude::*;

use wmm::wmm_bench::profiling::{batch_with_profile, site_records};
use wmm::wmm_harness::{compare, job_key, GateConfig, ParallelExecutor, RunManifest, SimCache};
use wmm::wmm_obs::MetricsRegistry;
use wmm::wmm_sim::arch::armv8_xgene1;
use wmm::wmm_sim::isa::{AccessOrd, FenceKind, Instr, Loc};
use wmm::wmm_sim::machine::{Program, WorkloadCtx};
use wmm::wmm_sim::Machine;
use wmm::wmmbench::costfn::Calibration;
use wmm::wmmbench::exec::{Executor, SerialExecutor, SimJob};
use wmm::wmmbench::image::{compute_envelope, Image, Injection, Segment, SiteRewriter};
use wmm::wmmbench::json::ToJson;
use wmm::wmmbench::runner::{BenchSpec, RunConfig};
use wmm::wmmbench::sensitivity::{pow2_targets, sweep_with, SweepResult, SweepTarget};
use wmm::wmmbench::strategy::FnStrategy;

// ---------------------------------------------------------------------------
// A small synthetic campaign to drive the executor end to end
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Site;

struct Synthetic {
    sites: usize,
}

impl BenchSpec<Site> for Synthetic {
    fn name(&self) -> &str {
        "synthetic"
    }
    fn image(&self, seed: u64) -> Image<Site> {
        let mut segs = vec![];
        for i in 0..self.sites {
            segs.push(Segment::Code(vec![Instr::Compute {
                cycles: 500 + ((seed as u32).wrapping_add(i as u32) % 7) * 10,
            }]));
            segs.push(Segment::Site(Site));
        }
        Image {
            threads: vec![segs],
            ctx: WorkloadCtx::default(),
            work_units: self.sites as f64,
        }
    }
}

/// One synthetic sweep through the given executor.
fn campaign_sweep(exec: &dyn Executor) -> SweepResult {
    let machine = Machine::new(armv8_xgene1());
    let strategy = FnStrategy::new("dmb", |_: &Site| vec![Instr::Fence(FenceKind::DmbIsh)]);
    let cal = Calibration::measure(&machine, false, 10);
    let env = compute_envelope(&[Site], &[&strategy], 3);
    sweep_with(
        &machine,
        &Synthetic { sites: 40 },
        &strategy,
        SweepTarget::AllSites,
        &cal,
        &pow2_targets(0, 8),
        env,
        RunConfig::quick(),
        exec,
    )
}

/// Manifest built from a sweep, as the fig binaries do.
fn campaign_manifest(sweep: &SweepResult) -> RunManifest {
    let mut m = RunManifest::new("harness_test_campaign", sweep.arch.clone());
    if let Some(fit) = &sweep.fit {
        m.push_fit(&sweep.benchmark, fit);
    }
    for p in &sweep.points {
        // Label by requested target — distinct small targets can calibrate
        // to the same actual ns, and the gate rejects duplicate labels.
        m.push_cell(
            format!("{}/t={:.0}", sweep.benchmark, p.target_ns),
            p.rel_perf,
        );
    }
    m
}

// ---------------------------------------------------------------------------
// Determinism: worker count never changes a byte
// ---------------------------------------------------------------------------

#[test]
fn manifests_are_byte_identical_across_thread_counts() {
    let baseline = campaign_manifest(&campaign_sweep(&SerialExecutor));
    let canonical = baseline.canonical_json().to_string_pretty();
    assert!(!baseline.fits.is_empty(), "sweep must produce a fit");
    for threads in [1, 2, 4, 8] {
        let exec = ParallelExecutor::new(Some(threads));
        let manifest = campaign_manifest(&campaign_sweep(&exec));
        assert_eq!(
            manifest.canonical_json().to_string_pretty(),
            canonical,
            "threads = {threads}"
        );
    }
}

#[test]
fn fitted_k_is_bitwise_identical_across_thread_counts() {
    let serial_k = campaign_sweep(&SerialExecutor).fit.expect("fit").k;
    for threads in [1, 4] {
        let exec = ParallelExecutor::new(Some(threads));
        let k = campaign_sweep(&exec).fit.expect("fit").k;
        assert_eq!(k.to_bits(), serial_k.to_bits(), "threads = {threads}");
    }
}

#[test]
fn telemetry_counters_identical_across_thread_counts() {
    // The determinism contract extends to telemetry: everything under
    // `deterministic_json()` — cells, fits, executor counters and the
    // aggregated simulator statistics — is byte-identical whether the
    // campaign ran on one worker or four. Only `timing` may differ, and it
    // is excluded from that scope.
    let mut reference: Option<(wmm::wmm_harness::SimTotals, String)> = None;
    for threads in [1, 4] {
        let exec = ParallelExecutor::new(Some(threads));
        let mut manifest = campaign_manifest(&campaign_sweep(&exec));
        manifest.telemetry = Some(exec.telemetry());
        let t = manifest.telemetry.as_ref().unwrap();
        assert!(t.sim.jobs_observed > 0, "campaign must simulate jobs");
        assert!(t.sim.total_fences() > 0, "fenced campaign must run fences");
        assert_eq!(t.timing.threads, threads, "timing records worker count");
        let det = manifest.deterministic_json().to_string_pretty();
        match &reference {
            None => reference = Some((t.sim.clone(), det)),
            Some((sim, json)) => {
                assert_eq!(&t.sim, sim, "sim totals, threads = {threads}");
                assert_eq!(&det, json, "deterministic json, threads = {threads}");
            }
        }
    }
}

#[test]
fn nan_fit_fails_the_gate() {
    // A fit gone non-finite must be a hard gate failure: every NaN
    // comparison is false, so `drift > tol` would otherwise silently pass.
    let exec = ParallelExecutor::new(Some(2));
    let baseline = campaign_manifest(&campaign_sweep(&exec));
    let mut poisoned = baseline.clone();
    poisoned.fits[0].k = f64::NAN;
    let report = compare(&baseline, &poisoned, GateConfig::default());
    assert!(!report.pass(), "NaN fit must fail the gate");
    assert!(
        report.failures.iter().any(|f| f.contains("non-finite")),
        "failure must name the non-finite value: {:?}",
        report.failures
    );
}

#[test]
fn warm_cache_changes_nothing() {
    let exec = ParallelExecutor::new(Some(4)).with_cache(SimCache::in_memory());
    let cold = campaign_manifest(&campaign_sweep(&exec));
    let warm = campaign_manifest(&campaign_sweep(&exec));
    assert_eq!(
        cold.canonical_json().to_string_pretty(),
        warm.canonical_json().to_string_pretty()
    );
    let t = exec.telemetry();
    assert!(t.cache_hits > 0, "second campaign must hit the cache");
    assert_eq!(t.cache_hits, t.cache_misses, "warm run is a full replay");
    // The cache's own stats must tell the same story the telemetry does:
    // every miss was inserted once, nothing touched disk.
    let stats = exec.cache_stats().expect("executor has a cache");
    assert_eq!(stats.hits, t.cache_hits);
    assert_eq!(stats.misses, t.cache_misses);
    assert_eq!(
        stats.puts, t.cache_misses,
        "each miss inserted exactly once"
    );
    assert_eq!(stats.entries, stats.puts, "in-memory lane keeps every put");
    assert_eq!(stats.disk_appends, 0);
    assert_eq!(stats.disk_append_bytes, 0);
}

#[test]
fn disk_cache_survives_processes_and_stays_exact() {
    let dir = std::env::temp_dir().join("wmm-harness-it");
    let path = dir.join("sim.cache");
    let _ = std::fs::remove_file(&path);

    let first = {
        let exec = ParallelExecutor::new(Some(2)).with_cache(SimCache::with_disk(&path).unwrap());
        campaign_manifest(&campaign_sweep(&exec))
    };
    // Fresh executor, reloaded cache: everything answered from disk.
    let exec = ParallelExecutor::new(Some(2)).with_cache(SimCache::with_disk(&path).unwrap());
    let second = campaign_manifest(&campaign_sweep(&exec));
    assert_eq!(
        first.canonical_json().to_string_pretty(),
        second.canonical_json().to_string_pretty()
    );
    let t = exec.telemetry();
    assert_eq!(t.cache_misses, 0, "reloaded cache must answer every job");
    // An all-hits run appends nothing: the disk lane grew only during the
    // first process, by exactly one 50-byte line per inserted key.
    let stats = exec.cache_stats().expect("executor has a cache");
    assert_eq!(stats.puts, 0, "reloaded run has nothing to insert");
    assert_eq!(stats.disk_appends, 0);
    assert_eq!(stats.disk_append_bytes, 0);
    assert_eq!(stats.hits, t.cache_hits);
    let on_disk = std::fs::metadata(&path).expect("cache file exists").len();
    assert_eq!(
        on_disk,
        50 * stats.entries,
        "disk lane holds one 50-byte line per entry"
    );
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Gate: unmodified rerun passes, drift fails
// ---------------------------------------------------------------------------

#[test]
fn gate_passes_unmodified_rerun_and_fails_drift() {
    let exec = ParallelExecutor::new(Some(2));
    let baseline = campaign_manifest(&campaign_sweep(&exec));
    let rerun = campaign_manifest(&campaign_sweep(&exec));
    let report = compare(&baseline, &rerun, GateConfig::default());
    assert!(
        report.pass(),
        "identical rerun must pass: {:?}",
        report.failures
    );
    assert!(report.checked > 0);

    let mut drifted = rerun.clone();
    drifted.fits[0].k *= 1.5;
    let report = compare(&baseline, &drifted, GateConfig::default());
    assert!(!report.pass(), "50% k drift must fail the gate");
}

#[test]
fn manifest_roundtrips_through_disk() {
    let exec = ParallelExecutor::new(Some(2));
    let mut manifest = campaign_manifest(&campaign_sweep(&exec));
    manifest.telemetry = Some(exec.telemetry());
    let dir = std::env::temp_dir().join("wmm-harness-it-manifest");
    let path = manifest.write(&dir).unwrap();
    let back = RunManifest::load(&path).unwrap();
    assert_eq!(back, manifest);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Observability: sited runs are free, deterministic, and sum consistently
// ---------------------------------------------------------------------------

/// A two-thread bench with fences and shared stores, so sited runs have
/// cross-thread contention, store-buffer pressure and per-site stalls.
struct Contended;

impl BenchSpec<Site> for Contended {
    fn name(&self) -> &str {
        "contended"
    }
    fn image(&self, seed: u64) -> Image<Site> {
        let thread = |t: u64| {
            let mut segs = vec![];
            for i in 0..12u64 {
                segs.push(Segment::Code(vec![
                    Instr::Compute {
                        cycles: 80 + ((seed ^ t).wrapping_add(i) % 5) as u32 * 9,
                    },
                    Instr::Store {
                        loc: Loc::SharedRw(0x40 + (i % 4)),
                        ord: AccessOrd::Plain,
                    },
                ]));
                segs.push(Segment::Labeled(
                    "ld",
                    vec![Instr::Load {
                        loc: Loc::SharedRw(0x40 + ((i + 1) % 4)),
                        ord: AccessOrd::Plain,
                    }],
                ));
                segs.push(Segment::Site(Site));
            }
            segs
        };
        Image {
            threads: vec![thread(0), thread(1)],
            ctx: WorkloadCtx::default(),
            work_units: 24.0,
        }
    }
}

/// One sited profiling batch of the contended bench through `exec`,
/// rendered as the deterministic manifest text the CI gate consumes.
fn profiled_manifest_text(exec: &dyn Executor) -> String {
    let machine = Machine::new(armv8_xgene1());
    let strategy = FnStrategy::new("dmb", |_: &Site| vec![Instr::Fence(FenceKind::DmbIsh)]);
    let env = compute_envelope(&[Site], &[&strategy], 0);
    let rw = SiteRewriter::new(&strategy, Injection::None, env);
    let batch = batch_with_profile(&machine, &Contended, &rw, RunConfig::quick(), exec);
    assert!(
        batch.profile.sites.values().any(|s| s.fences > 0),
        "fenced bench must attribute fence stalls to sites"
    );
    let mut manifest = RunManifest::new("obs_determinism", "armv8-xgene1");
    manifest.push_cell("contended/wall_ns", batch.mean_wall_ns());
    manifest.push_cell("contended/sites", batch.profile.sites.len() as f64);
    manifest.telemetry = Some(wmm::wmm_harness::Telemetry {
        sites: Some(site_records(&batch.profile)),
        ..Default::default()
    });
    manifest.deterministic_json().to_string_pretty()
}

#[test]
fn sited_profiles_identical_across_thread_counts_and_reruns() {
    // The determinism contract extends to the observability layer: the
    // per-site profile — and the manifest text carrying it, which CI gates
    // against a committed baseline — is byte-identical whether the batch
    // ran serially, on one worker, or on four, and across reruns.
    let reference = profiled_manifest_text(&SerialExecutor);
    for threads in [1, 4] {
        let exec = ParallelExecutor::new(Some(threads));
        assert_eq!(
            profiled_manifest_text(&exec),
            reference,
            "threads = {threads}"
        );
        assert_eq!(
            profiled_manifest_text(&exec),
            reference,
            "rerun, threads = {threads}"
        );
    }
}

#[test]
fn labeled_segments_get_stable_site_names() {
    let strategy = FnStrategy::new("dmb", |_: &Site| vec![Instr::Fence(FenceKind::DmbIsh)]);
    let env = compute_envelope(&[Site], &[&strategy], 0);
    let rw = SiteRewriter::new(&strategy, Injection::None, env);
    let img = Contended.image(7);
    let (prog, map) = rw.link_sited(&img);
    // The labeled loads are their own named rows, distinct from pooled code.
    assert!(map.names().iter().any(|n| n == "t0:ld#0"));
    assert!(map.names().iter().any(|n| n == "t1:ld#11"));
    assert!(map.names().iter().any(|n| n == "t0:code"));
    // link_sited is a pure annotation: same program as link().
    assert_eq!(prog.threads, rw.link(&img).threads);
}

// ---------------------------------------------------------------------------
// Property tests: batch-level determinism and cache-key hygiene
// ---------------------------------------------------------------------------

fn mk_jobs<'m>(machine: &'m Machine, spec: &[(u32, u64)]) -> Vec<SimJob<'m>> {
    spec.iter()
        .map(|&(cycles, seed)| SimJob {
            machine,
            program: Program::new(vec![vec![
                Instr::Compute {
                    cycles: 100 + cycles,
                },
                Instr::Fence(FenceKind::DmbIsh),
            ]]),
            ctx: WorkloadCtx::default(),
            seed,
            sited: false,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any batch and any worker count, the parallel executor returns
    /// exactly the serial executor's results, bit for bit.
    #[test]
    fn parallel_batches_match_serial(
        spec in prop::collection::vec((0u32..5_000, 0u64..1_000), 1..40),
        threads in 1usize..9,
    ) {
        let machine = Machine::new(armv8_xgene1());
        let serial = SerialExecutor.run_batch(mk_jobs(&machine, &spec));
        let par = ParallelExecutor::new(Some(threads)).run_batch(mk_jobs(&machine, &spec));
        prop_assert_eq!(
            par.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
            serial.iter().map(|t| t.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Caching a batch never changes its results, for any executor shape.
    #[test]
    fn cached_batches_match_uncached(
        spec in prop::collection::vec((0u32..5_000, 0u64..1_000), 1..40),
        threads in 1usize..9,
    ) {
        let machine = Machine::new(armv8_xgene1());
        let uncached = ParallelExecutor::new(Some(threads)).run_batch(mk_jobs(&machine, &spec));
        let exec = ParallelExecutor::new(Some(threads)).with_cache(SimCache::in_memory());
        let cold = exec.run_batch(mk_jobs(&machine, &spec));
        let warm = exec.run_batch(mk_jobs(&machine, &spec));
        prop_assert_eq!(&cold, &uncached);
        prop_assert_eq!(&warm, &uncached);
    }

    /// Sited execution is observation, not perturbation: for any program,
    /// `run_sited` returns byte-identical statistics to `run` (the default
    /// path carries no observability cost), and its per-site fence stalls
    /// partition the per-kind totals — same execution counts exactly, same
    /// cycles within float reassociation.
    #[test]
    fn sited_runs_are_free_and_partition_fence_totals(
        spec in prop::collection::vec((0u32..2_000, 0usize..7, 0u64..4), 2..24),
        seed in 0u64..1_000,
    ) {
        let machine = Machine::new(armv8_xgene1());
        let mut threads = vec![vec![], vec![]];
        for (i, &(cycles, kind, loc)) in spec.iter().enumerate() {
            let t = &mut threads[i % 2];
            t.push(Instr::Compute { cycles: 50 + cycles });
            t.push(Instr::Store {
                loc: Loc::SharedRw(0x80 + loc),
                ord: AccessOrd::Plain,
            });
            t.push(Instr::Fence(FenceKind::ALL[kind]));
        }
        let prog = Program::new(threads);
        let ctx = WorkloadCtx::default();

        let plain = machine.run(&prog, &ctx, seed);
        let sited = machine.run_sited(&prog, &ctx, seed);
        prop_assert!(plain.per_site.is_none(), "default path must not observe");
        let mut scrubbed = sited.clone();
        let sites = scrubbed.per_site.take().expect("sited run must observe");
        prop_assert_eq!(&scrubbed, &plain);

        for &kind in &FenceKind::ALL {
            let fences: u64 = sites
                .iter()
                .filter(|s| s.fence == Some(kind))
                .map(|s| s.fences)
                .sum();
            prop_assert_eq!(fences, sited.fences(kind));
            let site_cycles: f64 = sites
                .iter()
                .filter(|s| s.fence == Some(kind))
                .map(|s| s.fence_cycles)
                .sum();
            let kind_cycles = sited.fence_stall_cycles(kind);
            prop_assert!(
                (site_cycles - kind_cycles).abs() <= 1e-9 * kind_cycles.abs().max(1.0),
                "fence cycles, {kind:?}: {site_cycles} vs {kind_cycles}"
            );
        }
        let site_sb: f64 = sites.iter().map(|s| s.sb_stall_cycles).sum();
        prop_assert!(
            (site_sb - sited.sb_stall_cycles).abs()
                <= 1e-9 * sited.sb_stall_cycles.abs().max(1.0),
            "sb cycles: {site_sb} vs {}",
            sited.sb_stall_cycles
        );
    }

    /// For any batch, the structural projection of the attached metrics
    /// registry serialises byte-identically whether the batch ran on one,
    /// two or four workers — the determinism contract extends to the
    /// metrics layer. (Observational entries — per-worker counters, the
    /// latency histogram, lock waits — are excluded by class.)
    #[test]
    fn metrics_structural_snapshot_invariant_under_worker_count(
        spec in prop::collection::vec((0u32..5_000, 0u64..1_000), 1..40),
    ) {
        let machine = Machine::new(armv8_xgene1());
        let mut reference: Option<String> = None;
        for threads in [1usize, 2, 4] {
            let registry = MetricsRegistry::new();
            let exec = ParallelExecutor::new(Some(threads))
                .with_cache(SimCache::in_memory())
                .with_metrics(&registry);
            exec.run_batch(mk_jobs(&machine, &spec));
            // Warm replay: hit/miss accounting must stay deterministic too.
            exec.run_batch(mk_jobs(&machine, &spec));
            let text = registry.snapshot().structural().to_json().to_string_pretty();
            match &reference {
                None => reference = Some(text),
                Some(r) => prop_assert!(
                    &text == r,
                    "structural snapshot diverged at threads = {threads}"
                ),
            }
        }
    }

    /// Cache keys separate distinct inputs and are stable for equal ones.
    #[test]
    fn cache_keys_respect_identity(
        cycles in 0u32..10_000,
        seed in 0u64..1_000_000,
    ) {
        let machine = Machine::new(armv8_xgene1());
        let job = |c, s| mk_jobs(&machine, &[(c, s)]).remove(0);
        let base = job_key(&job(cycles, seed));
        prop_assert_eq!(base, job_key(&job(cycles, seed)));
        prop_assert!(base != job_key(&job(cycles + 1, seed)));
        prop_assert!(base != job_key(&job(cycles, seed + 1)));
    }
}
