//! Integration tests for the wmm-harness execution layer: parallel
//! determinism (the headline contract — worker count never changes a byte
//! of experiment output), result caching, run manifests and the regression
//! gate.

use proptest::prelude::*;

use wmm::wmm_harness::{compare, job_key, GateConfig, ParallelExecutor, RunManifest, SimCache};
use wmm::wmm_sim::arch::armv8_xgene1;
use wmm::wmm_sim::isa::{FenceKind, Instr};
use wmm::wmm_sim::machine::{Program, WorkloadCtx};
use wmm::wmm_sim::Machine;
use wmm::wmmbench::costfn::Calibration;
use wmm::wmmbench::exec::{Executor, SerialExecutor, SimJob};
use wmm::wmmbench::image::{compute_envelope, Image, Segment};
use wmm::wmmbench::runner::{BenchSpec, RunConfig};
use wmm::wmmbench::sensitivity::{pow2_targets, sweep_with, SweepResult, SweepTarget};
use wmm::wmmbench::strategy::FnStrategy;

// ---------------------------------------------------------------------------
// A small synthetic campaign to drive the executor end to end
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Site;

struct Synthetic {
    sites: usize,
}

impl BenchSpec<Site> for Synthetic {
    fn name(&self) -> &str {
        "synthetic"
    }
    fn image(&self, seed: u64) -> Image<Site> {
        let mut segs = vec![];
        for i in 0..self.sites {
            segs.push(Segment::Code(vec![Instr::Compute {
                cycles: 500 + ((seed as u32).wrapping_add(i as u32) % 7) * 10,
            }]));
            segs.push(Segment::Site(Site));
        }
        Image {
            threads: vec![segs],
            ctx: WorkloadCtx::default(),
            work_units: self.sites as f64,
        }
    }
}

/// One synthetic sweep through the given executor.
fn campaign_sweep(exec: &dyn Executor) -> SweepResult {
    let machine = Machine::new(armv8_xgene1());
    let strategy = FnStrategy::new("dmb", |_: &Site| vec![Instr::Fence(FenceKind::DmbIsh)]);
    let cal = Calibration::measure(&machine, false, 10);
    let env = compute_envelope(&[Site], &[&strategy], 3);
    sweep_with(
        &machine,
        &Synthetic { sites: 40 },
        &strategy,
        SweepTarget::AllSites,
        &cal,
        &pow2_targets(0, 8),
        env,
        RunConfig::quick(),
        exec,
    )
}

/// Manifest built from a sweep, as the fig binaries do.
fn campaign_manifest(sweep: &SweepResult) -> RunManifest {
    let mut m = RunManifest::new("harness_test_campaign", sweep.arch.clone());
    if let Some(fit) = &sweep.fit {
        m.push_fit(&sweep.benchmark, fit);
    }
    for p in &sweep.points {
        // Label by requested target — distinct small targets can calibrate
        // to the same actual ns, and the gate rejects duplicate labels.
        m.push_cell(
            format!("{}/t={:.0}", sweep.benchmark, p.target_ns),
            p.rel_perf,
        );
    }
    m
}

// ---------------------------------------------------------------------------
// Determinism: worker count never changes a byte
// ---------------------------------------------------------------------------

#[test]
fn manifests_are_byte_identical_across_thread_counts() {
    let baseline = campaign_manifest(&campaign_sweep(&SerialExecutor));
    let canonical = baseline.canonical_json().to_string_pretty();
    assert!(!baseline.fits.is_empty(), "sweep must produce a fit");
    for threads in [1, 2, 4, 8] {
        let exec = ParallelExecutor::new(Some(threads));
        let manifest = campaign_manifest(&campaign_sweep(&exec));
        assert_eq!(
            manifest.canonical_json().to_string_pretty(),
            canonical,
            "threads = {threads}"
        );
    }
}

#[test]
fn fitted_k_is_bitwise_identical_across_thread_counts() {
    let serial_k = campaign_sweep(&SerialExecutor).fit.expect("fit").k;
    for threads in [1, 4] {
        let exec = ParallelExecutor::new(Some(threads));
        let k = campaign_sweep(&exec).fit.expect("fit").k;
        assert_eq!(k.to_bits(), serial_k.to_bits(), "threads = {threads}");
    }
}

#[test]
fn telemetry_counters_identical_across_thread_counts() {
    // The determinism contract extends to telemetry: everything under
    // `deterministic_json()` — cells, fits, executor counters and the
    // aggregated simulator statistics — is byte-identical whether the
    // campaign ran on one worker or four. Only `timing` may differ, and it
    // is excluded from that scope.
    let mut reference: Option<(wmm::wmm_harness::SimTotals, String)> = None;
    for threads in [1, 4] {
        let exec = ParallelExecutor::new(Some(threads));
        let mut manifest = campaign_manifest(&campaign_sweep(&exec));
        manifest.telemetry = Some(exec.telemetry());
        let t = manifest.telemetry.as_ref().unwrap();
        assert!(t.sim.jobs_observed > 0, "campaign must simulate jobs");
        assert!(t.sim.total_fences() > 0, "fenced campaign must run fences");
        assert_eq!(t.timing.threads, threads, "timing records worker count");
        let det = manifest.deterministic_json().to_string_pretty();
        match &reference {
            None => reference = Some((t.sim.clone(), det)),
            Some((sim, json)) => {
                assert_eq!(&t.sim, sim, "sim totals, threads = {threads}");
                assert_eq!(&det, json, "deterministic json, threads = {threads}");
            }
        }
    }
}

#[test]
fn nan_fit_fails_the_gate() {
    // A fit gone non-finite must be a hard gate failure: every NaN
    // comparison is false, so `drift > tol` would otherwise silently pass.
    let exec = ParallelExecutor::new(Some(2));
    let baseline = campaign_manifest(&campaign_sweep(&exec));
    let mut poisoned = baseline.clone();
    poisoned.fits[0].k = f64::NAN;
    let report = compare(&baseline, &poisoned, GateConfig::default());
    assert!(!report.pass(), "NaN fit must fail the gate");
    assert!(
        report.failures.iter().any(|f| f.contains("non-finite")),
        "failure must name the non-finite value: {:?}",
        report.failures
    );
}

#[test]
fn warm_cache_changes_nothing() {
    let exec = ParallelExecutor::new(Some(4)).with_cache(SimCache::in_memory());
    let cold = campaign_manifest(&campaign_sweep(&exec));
    let warm = campaign_manifest(&campaign_sweep(&exec));
    assert_eq!(
        cold.canonical_json().to_string_pretty(),
        warm.canonical_json().to_string_pretty()
    );
    let t = exec.telemetry();
    assert!(t.cache_hits > 0, "second campaign must hit the cache");
    assert_eq!(t.cache_hits, t.cache_misses, "warm run is a full replay");
}

#[test]
fn disk_cache_survives_processes_and_stays_exact() {
    let dir = std::env::temp_dir().join("wmm-harness-it");
    let path = dir.join("sim.cache");
    let _ = std::fs::remove_file(&path);

    let first = {
        let exec = ParallelExecutor::new(Some(2)).with_cache(SimCache::with_disk(&path).unwrap());
        campaign_manifest(&campaign_sweep(&exec))
    };
    // Fresh executor, reloaded cache: everything answered from disk.
    let exec = ParallelExecutor::new(Some(2)).with_cache(SimCache::with_disk(&path).unwrap());
    let second = campaign_manifest(&campaign_sweep(&exec));
    assert_eq!(
        first.canonical_json().to_string_pretty(),
        second.canonical_json().to_string_pretty()
    );
    let t = exec.telemetry();
    assert_eq!(t.cache_misses, 0, "reloaded cache must answer every job");
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Gate: unmodified rerun passes, drift fails
// ---------------------------------------------------------------------------

#[test]
fn gate_passes_unmodified_rerun_and_fails_drift() {
    let exec = ParallelExecutor::new(Some(2));
    let baseline = campaign_manifest(&campaign_sweep(&exec));
    let rerun = campaign_manifest(&campaign_sweep(&exec));
    let report = compare(&baseline, &rerun, GateConfig::default());
    assert!(
        report.pass(),
        "identical rerun must pass: {:?}",
        report.failures
    );
    assert!(report.checked > 0);

    let mut drifted = rerun.clone();
    drifted.fits[0].k *= 1.5;
    let report = compare(&baseline, &drifted, GateConfig::default());
    assert!(!report.pass(), "50% k drift must fail the gate");
}

#[test]
fn manifest_roundtrips_through_disk() {
    let exec = ParallelExecutor::new(Some(2));
    let mut manifest = campaign_manifest(&campaign_sweep(&exec));
    manifest.telemetry = Some(exec.telemetry());
    let dir = std::env::temp_dir().join("wmm-harness-it-manifest");
    let path = manifest.write(&dir).unwrap();
    let back = RunManifest::load(&path).unwrap();
    assert_eq!(back, manifest);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Property tests: batch-level determinism and cache-key hygiene
// ---------------------------------------------------------------------------

fn mk_jobs<'m>(machine: &'m Machine, spec: &[(u32, u64)]) -> Vec<SimJob<'m>> {
    spec.iter()
        .map(|&(cycles, seed)| SimJob {
            machine,
            program: Program::new(vec![vec![
                Instr::Compute {
                    cycles: 100 + cycles,
                },
                Instr::Fence(FenceKind::DmbIsh),
            ]]),
            ctx: WorkloadCtx::default(),
            seed,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any batch and any worker count, the parallel executor returns
    /// exactly the serial executor's results, bit for bit.
    #[test]
    fn parallel_batches_match_serial(
        spec in prop::collection::vec((0u32..5_000, 0u64..1_000), 1..40),
        threads in 1usize..9,
    ) {
        let machine = Machine::new(armv8_xgene1());
        let serial = SerialExecutor.run_batch(mk_jobs(&machine, &spec));
        let par = ParallelExecutor::new(Some(threads)).run_batch(mk_jobs(&machine, &spec));
        prop_assert_eq!(
            par.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
            serial.iter().map(|t| t.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Caching a batch never changes its results, for any executor shape.
    #[test]
    fn cached_batches_match_uncached(
        spec in prop::collection::vec((0u32..5_000, 0u64..1_000), 1..40),
        threads in 1usize..9,
    ) {
        let machine = Machine::new(armv8_xgene1());
        let uncached = ParallelExecutor::new(Some(threads)).run_batch(mk_jobs(&machine, &spec));
        let exec = ParallelExecutor::new(Some(threads)).with_cache(SimCache::in_memory());
        let cold = exec.run_batch(mk_jobs(&machine, &spec));
        let warm = exec.run_batch(mk_jobs(&machine, &spec));
        prop_assert_eq!(&cold, &uncached);
        prop_assert_eq!(&warm, &uncached);
    }

    /// Cache keys separate distinct inputs and are stable for equal ones.
    #[test]
    fn cache_keys_respect_identity(
        cycles in 0u32..10_000,
        seed in 0u64..1_000_000,
    ) {
        let machine = Machine::new(armv8_xgene1());
        let job = |c, s| mk_jobs(&machine, &[(c, s)]).remove(0);
        let base = job_key(&job(cycles, seed));
        prop_assert_eq!(base, job_key(&job(cycles, seed)));
        prop_assert!(base != job_key(&job(cycles + 1, seed)));
        prop_assert!(base != job_key(&job(cycles, seed + 1)));
    }
}
