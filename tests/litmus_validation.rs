//! Semantic validation: the litmus suite holds under all models, and the
//! fence vocabulary the timing simulator prices agrees with the semantic
//! classes the explorer enforces.

use wmm::wmm_litmus::ops::{FClass, LOp, LitmusTest};
use wmm::wmm_litmus::suite::{full_suite, run_full_suite};
use wmm::wmm_litmus::{explore, ModelKind};
use wmm::wmm_sim::isa::FenceKind;

#[test]
fn full_suite_expectations_hold() {
    let rows = run_full_suite();
    assert!(rows.len() >= 50, "suite too small: {}", rows.len());
    let failures: Vec<_> = rows.iter().filter(|(_, _, e, o)| e != o).collect();
    assert!(failures.is_empty(), "violations: {failures:?}");
}

#[test]
fn sc_never_shows_any_weak_outcome() {
    for entry in full_suite() {
        let out = explore(&entry.test, ModelKind::Sc);
        // If the suite marks SC as forbidding, verify; and regardless, any
        // outcome SC allows must also be reachable on every weaker model.
        for weaker in [ModelKind::Tso, ModelKind::ArmV8, ModelKind::Power] {
            let weak = explore(&entry.test, weaker);
            for f in &out.finals {
                assert!(
                    weak.finals.contains(f),
                    "{}: SC outcome {f:?} missing under {weaker:?} — models must be monotone",
                    entry.test.name
                );
            }
        }
    }
}

/// Does the program carry release/acquire access attributes?
fn uses_rel_acq(test: &LitmusTest) -> bool {
    test.threads.iter().flatten().any(|op| {
        matches!(
            op,
            LOp::Store { release: true, .. } | LOp::Load { acquire: true, .. }
        )
    })
}

#[test]
fn tso_is_between_sc_and_armv8() {
    // The inclusion holds on the plain+fence fragment only. Programs with
    // release/acquire attributes are incomparable across the two models:
    // ARMv8 is RCsc, so `stlr; ldar` stay ordered, while on TSO the
    // attributes lower to plain MOVs and the store→load pair may reorder —
    // SB+rel+acq is forbidden on ARMv8 yet observable on TSO.
    for entry in full_suite() {
        if uses_rel_acq(&entry.test) {
            continue;
        }
        let tso = explore(&entry.test, ModelKind::Tso);
        let arm = explore(&entry.test, ModelKind::ArmV8);
        for f in &tso.finals {
            assert!(
                arm.finals.contains(f),
                "{}: TSO outcome {f:?} not reachable on ARMv8",
                entry.test.name
            );
        }
    }
}

#[test]
fn rcsc_makes_armv8_and_tso_incomparable_on_rel_acq() {
    // The exception above is real, not vacuous: the RCsc entry must exist
    // and must split the two models in ARMv8's favour.
    let entry = wmm::wmm_litmus::suite::sb_rel_acq();
    assert!(uses_rel_acq(&entry.test));
    let interesting = &entry.test.interesting;
    let memory = &entry.test.memory;
    assert!(explore(&entry.test, ModelKind::Tso).allows_with_memory(interesting, memory));
    assert!(!explore(&entry.test, ModelKind::ArmV8).allows_with_memory(interesting, memory));
}

#[test]
fn fence_kinds_map_to_the_classes_the_explorer_enforces() {
    // The timing model prices these instructions; the explorer defines what
    // they mean. The mapping must stay total over hardware fences.
    assert_eq!(FClass::of_fence(FenceKind::DmbIsh), Some(FClass::Full));
    assert_eq!(FClass::of_fence(FenceKind::HwSync), Some(FClass::Full));
    assert_eq!(FClass::of_fence(FenceKind::LwSync), Some(FClass::LwSync));
    assert_eq!(FClass::of_fence(FenceKind::DmbIshSt), Some(FClass::StSt));
    assert_eq!(FClass::of_fence(FenceKind::DmbIshLd), Some(FClass::LdLdSt));
    // Compiler barriers and isb have no standalone ordering class.
    assert_eq!(FClass::of_fence(FenceKind::Compiler), None);
    assert_eq!(FClass::of_fence(FenceKind::Isb), None);
}

#[test]
fn exploration_visits_reasonable_state_counts() {
    // Sanity on the memoisation: SB under SC is tiny; IRIW under POWER is
    // the largest shape but still bounded.
    let sb = wmm::wmm_litmus::suite::store_buffering();
    let small = explore(&sb.test, ModelKind::Sc);
    assert!(small.states_visited < 200, "{}", small.states_visited);
    let iriw = wmm::wmm_litmus::suite::iriw_addrs();
    let big = explore(&iriw.test, ModelKind::Power);
    assert!(
        big.states_visited < 2_000_000,
        "IRIW/POWER exploded: {}",
        big.states_visited
    );
    assert!(big.states_visited > small.states_visited);
}
