//! Shape assertions for the OpenJDK half of the evaluation (§4.2): the
//! orderings, winners and approximate factors the paper reports must hold
//! in this reproduction, under the reduced test protocol.

use wmm::wmm_bench::{
    fence_microbenchmarks, fig5_openjdk_sweeps, fig6_spark_elementals, jvm_nop_overhead,
    locking_patch_experiment, storestore_experiment, ExpConfig,
};
use wmm::wmm_jvm::barrier::Elemental;
use wmm::wmm_sim::arch::Arch;

fn cfg() -> ExpConfig {
    ExpConfig {
        scale: 0.3,
        run: wmm::wmmbench::runner::RunConfig {
            samples: 3,
            warmups: 1,
            base_seed: 0x1CEB00DA,
        },
    }
}

#[test]
fn fig5_spark_is_most_sensitive_on_both_architectures() {
    for arch in [Arch::ArmV8, Arch::Power7] {
        let sweeps = fig5_openjdk_sweeps(arch, cfg());
        let k_of = |name: &str| {
            sweeps
                .iter()
                .find(|s| s.benchmark == name)
                .and_then(|s| s.fit.as_ref())
                .map(|f| f.k)
                .unwrap_or(0.0)
        };
        let spark = k_of("spark");
        for s in &sweeps {
            if s.benchmark != "spark" {
                let k = s.fit.as_ref().map(|f| f.k).unwrap_or(0.0);
                assert!(
                    k < spark,
                    "{} (k={k}) should be less sensitive than spark (k={spark}) on {}",
                    s.benchmark,
                    arch.label()
                );
            }
        }
        // And sensitivities are in the paper's order of magnitude.
        assert!(
            (0.004..0.02).contains(&spark),
            "spark k={spark} out of band on {}",
            arch.label()
        );
    }
}

#[test]
fn fig5_xalan_is_second_on_arm_but_degraded_on_power() {
    let arm = fig5_openjdk_sweeps(Arch::ArmV8, cfg());
    let k = |sweeps: &[wmm::wmmbench::sensitivity::SweepResult], n: &str| {
        sweeps
            .iter()
            .find(|s| s.benchmark == n)
            .and_then(|s| s.fit.as_ref())
            .map(|f| f.k)
            .unwrap_or(0.0)
    };
    // ARM: xalan second after spark.
    let xalan_arm = k(&arm, "xalan");
    for s in &arm {
        if s.benchmark != "spark" && s.benchmark != "xalan" {
            assert!(
                k(&arm, &s.benchmark) < xalan_arm,
                "{} should rank below xalan on ARM",
                s.benchmark
            );
        }
    }
    // POWER: xalan's sensitivity collapses and it is the least stable.
    let pow = fig5_openjdk_sweeps(Arch::Power7, cfg());
    let xalan_pow = pow.iter().find(|s| s.benchmark == "xalan").unwrap();
    assert!(
        k(&pow, "xalan") < xalan_arm * 0.6,
        "xalan must degrade on POWER"
    );
    let most_unstable = pow
        .iter()
        .max_by(|a, b| {
            a.mean_error_width()
                .partial_cmp(&b.mean_error_width())
                .unwrap()
        })
        .unwrap();
    assert_eq!(
        most_unstable.benchmark,
        "xalan",
        "xalan should be the least stable POWER benchmark (got {} at {:.3})",
        most_unstable.benchmark,
        xalan_pow.mean_error_width()
    );
}

#[test]
fn fig6_storestore_dominates_spark_on_both_architectures() {
    for arch in [Arch::ArmV8, Arch::Power7] {
        let results = fig6_spark_elementals(arch, cfg());
        let k_of = |e: Elemental| {
            results
                .iter()
                .find(|(el, _)| *el == e)
                .and_then(|(_, s)| s.fit.as_ref())
                .map(|f| f.k)
                .unwrap_or(0.0)
        };
        let ss = k_of(Elemental::StoreStore);
        for e in [
            Elemental::LoadLoad,
            Elemental::LoadStore,
            Elemental::StoreLoad,
        ] {
            assert!(
                k_of(e) < ss,
                "{e:?} must be below StoreStore on {}",
                arch.label()
            );
        }
    }
}

#[test]
fn fig6_power_breakdown_shows_leaner_fencing() {
    // "Clearly the developers of the ARM implementation are more defensive
    // ... the Power developers rely more heavily on StoreStore and
    // StoreLoad": on POWER, LoadLoad and StoreLoad sensitivities are far
    // below LoadStore and StoreStore.
    let results = fig6_spark_elementals(Arch::Power7, cfg());
    let k_of = |e: Elemental| {
        results
            .iter()
            .find(|(el, _)| *el == e)
            .and_then(|(_, s)| s.fit.as_ref())
            .map(|f| f.k)
            .unwrap_or(0.0)
    };
    assert!(k_of(Elemental::LoadLoad) < k_of(Elemental::LoadStore) * 0.4);
    assert!(k_of(Elemental::StoreLoad) < k_of(Elemental::StoreStore) * 0.4);
}

#[test]
fn storestore_modification_is_an_order_of_magnitude_worse_on_power() {
    // §4.4's headline: the same class of single-barrier change costs ~0.7%
    // on ARM but ~12.5% on POWER — "this order of magnitude difference
    // could separate an acceptable implementation change and an
    // unacceptable one."
    let (arm_cmp, _, arm_a) = storestore_experiment(Arch::ArmV8, cfg());
    let (pow_cmp, _, pow_a) = storestore_experiment(Arch::Power7, cfg());
    let arm_drop = -arm_cmp.percent_change();
    let pow_drop = -pow_cmp.percent_change();
    assert!(arm_drop > 0.0 && arm_drop < 4.0, "ARM drop {arm_drop}%");
    assert!(pow_drop > 7.0 && pow_drop < 20.0, "POWER drop {pow_drop}%");
    assert!(
        pow_drop > 4.0 * arm_drop,
        "order-of-magnitude split lost: {arm_drop}% vs {pow_drop}%"
    );
    // Eq. 2 estimates land near the paper's 1.8 ns / 11.7 ns.
    let a_arm = arm_a.expect("arm estimate");
    let a_pow = pow_a.expect("power estimate");
    assert!((0.5..6.0).contains(&a_arm), "ARM a = {a_arm} ns");
    assert!((7.0..16.0).contains(&a_pow), "POWER a = {a_pow} ns");
}

#[test]
fn power_fence_micro_times_match_the_paper() {
    let rows = fence_microbenchmarks();
    let get = |l: &str| rows.iter().find(|(n, _)| n == l).unwrap().1;
    let sync = get("power sync");
    let lwsync = get("power lwsync");
    assert!((sync - 18.9).abs() < 1.5, "sync micro {sync} ns");
    assert!((lwsync - 6.1).abs() < 0.8, "lwsync micro {lwsync} ns");
    // "a microbenchmark ... would be able to establish a threefold
    // difference in execution time between the two instructions."
    assert!((sync / lwsync - 3.1).abs() < 0.5);
}

#[test]
fn arm_dmb_variants_indistinguishable_in_vitro() {
    let rows = fence_microbenchmarks();
    let get = |l: &str| rows.iter().find(|(n, _)| n == l).unwrap().1;
    let ish = get("arm dmb ish");
    for v in ["arm dmb ishld", "arm dmb ishst"] {
        assert!(
            (get(v) - ish).abs() / ish < 0.05,
            "{v} differs from dmb ish in a pure timing loop"
        );
    }
}

#[test]
fn nop_injection_costs_more_on_arm_than_power() {
    let arm = jvm_nop_overhead(Arch::ArmV8, cfg());
    let pow = jvm_nop_overhead(Arch::Power7, cfg());
    let mean = |rows: &[wmm::wmm_bench::StrategyDelta]| {
        rows.iter().map(|r| r.cmp.percent_change()).sum::<f64>() / rows.len() as f64
    };
    let (m_arm, m_pow) = (mean(&arm), mean(&pow));
    assert!(m_arm < 0.0, "ARM nop injection must cost: {m_arm}%");
    assert!(
        m_arm < m_pow,
        "ARM ({m_arm}%) should pay more than POWER ({m_pow}%)"
    );
}

#[test]
fn locking_patch_signs_match_the_paper() {
    let rows = locking_patch_experiment(cfg());
    let get = |l: &str| {
        rows.iter()
            .find(|(n, _)| n == l)
            .unwrap()
            .1
            .percent_change()
    };
    let lasr = get("la/sr");
    let barriers = get("barriers");
    assert!(lasr > 1.0, "patch should help with la/sr: {lasr}%");
    assert!(
        barriers < 0.5,
        "patch should not help with barriers: {barriers}%"
    );
    assert!(
        lasr > barriers + 1.0,
        "la/sr gain must exceed barrier-mode outcome"
    );
}
