//! Shape assertions for the Linux-kernel half of the evaluation (§4.3):
//! rankings, `read_barrier_depends` sensitivities and the Fig. 10 strategy
//! comparison.

use wmm::wmm_bench::{
    fig10_rbd_strategies, fig9_rbd_sweeps, kernel_nop_overhead, linux_ranking, rbd_cost_estimates,
    ExpConfig,
};
use wmm::wmm_kernel::macros::KMacro;
use wmm::wmm_kernel::rbd::RbdStrategy;

fn cfg() -> ExpConfig {
    ExpConfig {
        scale: 0.3,
        run: wmm::wmmbench::runner::RunConfig {
            samples: 3,
            warmups: 1,
            base_seed: 0x1CEB00DA,
        },
    }
}

#[test]
fn fig7_top_macros_match_the_paper() {
    let m = linux_ranking(cfg());
    let order = m.by_path_impact();
    let top3: Vec<KMacro> = order.iter().take(3).map(|(m, _)| *m).collect();
    // "It is clear that smp_mb, read_once and read_barrier_depends have the
    // most impact."
    for expect in [KMacro::SmpMb, KMacro::ReadOnce, KMacro::ReadBarrierDepends] {
        assert!(
            top3.contains(&expect),
            "{expect:?} missing from top-3: {top3:?}"
        );
    }
    // The mandatory device barriers rank at the bottom.
    let bottom: Vec<KMacro> = order.iter().rev().take(4).map(|(m, _)| *m).collect();
    let device = [KMacro::Mb, KMacro::Rmb, KMacro::Wmb];
    let device_in_bottom = device.iter().filter(|d| bottom.contains(d)).count();
    assert!(
        device_in_bottom >= 2,
        "device barriers should rank last: {bottom:?}"
    );
}

#[test]
fn fig8_benchmark_ranking_shape() {
    let m = linux_ranking(cfg());
    let order = m.by_benchmark_sensitivity();
    let names: Vec<&str> = order.iter().map(|(n, _)| n.as_str()).collect();
    // Microbenchmarks dominate the top of the ranking…
    let top4 = &names[..4];
    for expect in ["netperf_tcp", "netperf_udp", "ebizzy", "lmbench"] {
        assert!(top4.contains(&expect), "{expect} not in top-4: {top4:?}");
    }
    // …and the JVM benchmarks are almost completely insensitive.
    let bottom2 = &names[names.len() - 2..];
    for expect in ["spark", "h2"] {
        assert!(
            bottom2.contains(&expect),
            "{expect} should be least sensitive: {bottom2:?}"
        );
    }
    // 14 macros x 10 benchmarks of data behind the ranking.
    assert_eq!(m.data_points(), 140);
}

#[test]
fn fig9_rbd_sensitivity_ordering() {
    let sweeps = fig9_rbd_sweeps(cfg());
    let k = |n: &str| {
        sweeps
            .iter()
            .find(|s| s.benchmark == n)
            .and_then(|s| s.fit.as_ref())
            .map(|f| f.k)
            .unwrap_or(0.0)
    };
    // netperf_udp highest; lmbench next; real-world applications very low.
    assert!(k("netperf_udp") > k("lmbench"));
    assert!(k("lmbench") > k("netperf_tcp"));
    assert!(k("netperf_tcp") > k("ebizzy"));
    assert!(k("ebizzy") > k("xalan"));
    assert!(k("xalan") >= k("osm_stack") * 0.8);
    // Bands from the paper.
    assert!(
        (0.006..0.014).contains(&k("netperf_udp")),
        "udp k {}",
        k("netperf_udp")
    );
    assert!(k("osm_stack") < 0.001, "osm k {}", k("osm_stack"));
}

#[test]
fn fig10_isb_is_unreasonable_and_dmb_ishld_is_best_case() {
    let results = fig10_rbd_strategies(cfg());
    let mean_drop = |s: RbdStrategy| {
        let (_, deltas) = results.iter().find(|(st, _)| *st == s).unwrap();
        -deltas.iter().map(|d| d.cmp.percent_change()).sum::<f64>() / deltas.len() as f64
    };
    let isb = mean_drop(RbdStrategy::CtrlIsb);
    let ishld = mean_drop(RbdStrategy::DmbIshld);
    let ish = mean_drop(RbdStrategy::DmbIsh);
    let lasr = mean_drop(RbdStrategy::LaSr);
    assert!(
        isb > ishld && isb > ish && isb > mean_drop(RbdStrategy::Ctrl),
        "ctrl+isb must be the worst ordering strategy: isb {isb}%"
    );
    // "if ordering is required then dmb ishld or dmb ish represent the best
    // case scenarios."
    assert!(
        ishld <= ish + 0.5,
        "ishld ({ishld}%) should not exceed ish ({ish}%)"
    );
    assert!(ishld < isb && ish < isb && ishld < lasr);
    // Base case is exactly zero against itself.
    let (_, base) = results
        .iter()
        .find(|(s, _)| *s == RbdStrategy::BaseCase)
        .unwrap();
    for d in base {
        assert!((d.cmp.ratio - 1.0).abs() < 1e-9);
    }
}

#[test]
fn fig10_osm_stack_drop_is_small_but_real() {
    // "The osm stack results show a small, but statistically significant
    // drop of up to 1%."
    let results = fig10_rbd_strategies(cfg());
    for (s, deltas) in &results {
        if *s == RbdStrategy::BaseCase {
            continue;
        }
        let osm = deltas.iter().find(|d| d.bench == "osm_stack").unwrap();
        let drop = -osm.cmp.percent_change();
        assert!(
            drop < 2.0,
            "{}: osm_stack drop {drop}% too large for a low-sensitivity app",
            s.label()
        );
    }
}

#[test]
fn rbd_cost_divergences_match_the_paper() {
    let rows = rbd_cost_estimates(cfg());
    let get = |s: RbdStrategy| {
        let (_, a, b) = rows.iter().find(|(st, _, _)| *st == s).unwrap();
        (*a, *b)
    };
    // ctrl: cheap in vitro, dearer in vivo (branch-predictor pressure).
    let (ctrl_lm, ctrl_others) = get(RbdStrategy::Ctrl);
    assert!(
        ctrl_others > ctrl_lm * 1.5,
        "ctrl divergence lost: {ctrl_lm} vs {ctrl_others}"
    );
    // dmb ishld: dear in vitro, cheap in vivo (quiet load queues).
    let (ishld_lm, ishld_others) = get(RbdStrategy::DmbIshld);
    assert!(
        ishld_lm > ishld_others * 1.5,
        "ishld divergence lost: {ishld_lm} vs {ishld_others}"
    );
    // ctrl+isb: stable across contexts.
    let (isb_lm, isb_others) = get(RbdStrategy::CtrlIsb);
    assert!(
        (isb_lm - isb_others).abs() / isb_lm < 0.25,
        "ctrl+isb should be context-independent: {isb_lm} vs {isb_others}"
    );
    assert!((18.0..30.0).contains(&isb_lm), "ctrl+isb level {isb_lm} ns");
    // dmb ish: roughly workload-agnostic, ~10-12 ns.
    let (ish_lm, ish_others) = get(RbdStrategy::DmbIsh);
    assert!((8.0..16.0).contains(&ish_lm), "ish lmbench {ish_lm}");
    assert!((ish_lm - ish_others).abs() / ish_lm < 0.4);
}

#[test]
fn nop_padding_hurts_netperf_most() {
    let rows = kernel_nop_overhead(cfg());
    let worst = rows
        .iter()
        .min_by(|a, b| a.cmp.ratio.partial_cmp(&b.cmp.ratio).unwrap())
        .unwrap();
    assert!(
        worst.bench.starts_with("netperf"),
        "worst nop overhead should be netperf, got {}",
        worst.bench
    );
    let mean = rows.iter().map(|r| r.cmp.percent_change()).sum::<f64>() / rows.len() as f64;
    assert!(mean < -0.3 && mean > -4.0, "mean nop overhead {mean}%");
    // Insensitive benchmarks barely notice.
    let h2 = rows.iter().find(|r| r.bench == "h2").unwrap();
    assert!(h2.cmp.percent_change().abs() < 0.5);
}
