//! End-to-end tests of the methodology pipeline: calibration → injection →
//! sweep → fit → cost estimation, across crates.

use wmm::wmm_bench::{machine, ExpConfig};
use wmm::wmm_sim::arch::Arch;
use wmm::wmm_sim::isa::{FenceKind, Instr};
use wmm::wmm_sim::machine::WorkloadCtx;
use wmm::wmmbench::costfn::Calibration;
use wmm::wmmbench::image::{compute_envelope, Image, Injection, Segment, SiteRewriter};
use wmm::wmmbench::model::estimate_cost;
use wmm::wmmbench::runner::{measure, measure_relative, BenchSpec, RunConfig};
use wmm::wmmbench::sensitivity::{pow2_targets, sweep, SweepTarget};
use wmm::wmmbench::strategy::{FencingStrategy, FnStrategy};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OnePath;

/// A benchmark with an exactly-known structure: `sites` barrier sites, each
/// preceded by `compute` cycles of work, so the designed sensitivity is
/// computable in closed form.
struct Designed {
    sites: usize,
    compute: u32,
}

impl BenchSpec<OnePath> for Designed {
    fn name(&self) -> &str {
        "designed"
    }

    fn image(&self, _seed: u64) -> Image<OnePath> {
        let mut segs = vec![];
        for _ in 0..self.sites {
            segs.push(Segment::Code(vec![Instr::Compute {
                cycles: self.compute,
            }]));
            segs.push(Segment::Site(OnePath));
        }
        Image {
            threads: vec![segs],
            ctx: WorkloadCtx::default(),
            work_units: self.sites as f64,
        }
    }
}

fn strategy() -> impl FencingStrategy<OnePath> {
    FnStrategy::new("dmb", |_: &OnePath| vec![Instr::Fence(FenceKind::DmbIsh)])
}

#[test]
fn sweep_recovers_designed_sensitivity_within_tolerance() {
    let m = machine(Arch::ArmV8);
    let s = strategy();
    let cal = Calibration::measure(&m, false, 12);
    let env = compute_envelope(&[OnePath], &[&s], 3);
    // Designed: one site per (compute + fence) period.
    let bench = Designed {
        sites: 80,
        compute: 1200,
    };
    let result = sweep(
        &m,
        &bench,
        &s,
        SweepTarget::AllSites,
        &cal,
        &pow2_targets(0, 10),
        env,
        RunConfig::quick(),
    );
    let fit = result.fit.expect("fit converges");
    // Period ~= 1200 cycles / 2.4 GHz = 500 ns (plus fence ~4 ns).
    let designed_k = 1.0 / 504.0;
    let rel = (fit.k - designed_k).abs() / designed_k;
    assert!(rel < 0.3, "k = {}, designed {designed_k}, rel {rel}", fit.k);
    assert!(fit.r_squared > 0.98);
}

#[test]
fn eq2_estimates_real_strategy_change_cost() {
    // Measure k by sweeping; apply a real change whose per-site cost we
    // know (dmb -> dmb + isb adds ~the isb flush); check Eq. 2's estimate.
    let m = machine(Arch::ArmV8);
    let s = strategy();
    let with_isb = FnStrategy::new("dmb+isb", |_: &OnePath| {
        vec![
            Instr::Fence(FenceKind::DmbIsh),
            Instr::Fence(FenceKind::Isb),
        ]
    });
    let cal = Calibration::measure(&m, false, 12);
    let env = compute_envelope(&[OnePath], &[&s, &with_isb], 3);
    let bench = Designed {
        sites: 80,
        compute: 1200,
    };
    let result = sweep(
        &m,
        &bench,
        &s,
        SweepTarget::AllSites,
        &cal,
        &pow2_targets(0, 10),
        env.clone(),
        RunConfig::quick(),
    );
    let k = result.fit.expect("fit").k;

    let base_rw = SiteRewriter::new(&s, Injection::None, env.clone());
    let test_rw = SiteRewriter::new(&with_isb, Injection::None, env);
    let cmp = measure_relative(&m, &bench, &base_rw, &test_rw, RunConfig::quick());
    assert!(cmp.ratio < 1.0, "adding isb must slow things down");
    let a = estimate_cost(k, cmp.ratio);
    // The isb costs ~48 cycles = 20 ns; estimate should be in that region.
    assert!(
        (8.0..40.0).contains(&a),
        "estimated isb cost {a} ns implausible"
    );
}

#[test]
fn measurements_are_deterministic_per_seed() {
    let m = machine(Arch::Power7);
    let s = strategy();
    let env = compute_envelope(&[OnePath], &[&s], 5);
    let rw = SiteRewriter::new(&s, Injection::None, env);
    let bench = Designed {
        sites: 40,
        compute: 500,
    };
    let cfg = RunConfig::quick();
    let a = measure(&m, &bench, &rw, cfg);
    let b = measure(&m, &bench, &rw, cfg);
    assert_eq!(a.times_ns, b.times_ns);
}

#[test]
fn warmups_are_discarded() {
    let m = machine(Arch::ArmV8);
    let s = strategy();
    let env = compute_envelope(&[OnePath], &[&s], 3);
    let rw = SiteRewriter::new(&s, Injection::None, env);
    let bench = Designed {
        sites: 10,
        compute: 100,
    };
    let cfg = RunConfig {
        samples: 5,
        warmups: 3,
        base_seed: 42,
    };
    let meas = measure(&m, &bench, &rw, cfg);
    assert_eq!(meas.times_ns.len(), 5);
}

#[test]
fn quick_and_full_configs_differ() {
    let q = ExpConfig::quick();
    let f = ExpConfig::full();
    assert!(q.scale < f.scale);
    assert!(q.run.samples < f.run.samples);
    assert!(f.run.samples >= 6, "paper protocol: six or more samples");
    assert_eq!(f.run.warmups, 2, "paper protocol: two warm-ups discarded");
}
