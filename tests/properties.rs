//! Cross-crate property-based tests (proptest) on the invariants the
//! methodology relies on.

use proptest::prelude::*;

use wmm::wmm_sim::arch::{armv8_xgene1, power7};
use wmm::wmm_sim::isa::{pad_to, seq_size, AccessOrd, FenceKind, Instr, Loc};
use wmm::wmm_sim::machine::WorkloadCtx;
use wmm::wmm_sim::{Machine, Program, SplitMix64};
use wmm::wmm_stats::{confidence_interval, t_quantile, Summary};
use wmm::wmmbench::model::{estimate_cost, fit_sensitivity, predicted_performance};

// ---------------------------------------------------------------------------
// Model algebra
// ---------------------------------------------------------------------------

proptest! {
    /// Eq. 2 inverts Eq. 1 over the full sensitivity range k ∈ (0, 1) —
    /// the inversion `wmm-analyze`'s redundant-fence savings estimate
    /// relies on, not just the small-k regime the paper's fits live in.
    #[test]
    fn eq1_eq2_roundtrip(k in 1e-5f64..0.999, a in 1.0f64..20_000.0) {
        let p = predicted_performance(k, a);
        let back = estimate_cost(k, p);
        prop_assert!((back - a).abs() / a < 1e-6, "k={k} a={a} back={back}");
    }

    /// p(1) = 1, p is monotonically decreasing in a, and stays positive.
    #[test]
    fn model_shape(k in 1e-5f64..0.5) {
        prop_assert!((predicted_performance(k, 1.0) - 1.0).abs() < 1e-12);
        let mut prev = f64::INFINITY;
        for e in 0..16 {
            let p = predicted_performance(k, (1u64 << e) as f64);
            prop_assert!(p > 0.0 && p <= prev + 1e-15);
            prev = p;
        }
    }

    /// The fit recovers k from noiseless model data for any k in the
    /// paper's observed range.
    #[test]
    fn fit_recovers_k(k in 1e-4f64..0.05) {
        let samples: Vec<(f64, f64)> = (0..12)
            .map(|e| {
                let a = (1u64 << e) as f64;
                (a, predicted_performance(k, a))
            })
            .collect();
        let fit = fit_sensitivity(&samples).expect("fit");
        prop_assert!((fit.k - k).abs() / k < 1e-4, "k={k} got {}", fit.k);
    }

    /// With bounded multiplicative noise the estimate stays within a band.
    #[test]
    fn fit_robust_to_noise(k in 1e-3f64..0.02, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let samples: Vec<(f64, f64)> = (0..12)
            .map(|e| {
                let a = (1u64 << e) as f64;
                (a, predicted_performance(k, a) * rng.jitter(0.01))
            })
            .collect();
        let fit = fit_sensitivity(&samples).expect("fit");
        prop_assert!((fit.k - k).abs() / k < 0.5, "k={k} got {}", fit.k);
    }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

proptest! {
    /// AM–GM inequality and min/max envelope for any positive sample set.
    #[test]
    fn summary_invariants(samples in prop::collection::vec(0.1f64..1e6, 1..40)) {
        let s = Summary::of(&samples);
        prop_assert!(s.gmean <= s.mean * (1.0 + 1e-12));
        prop_assert!(s.min <= s.gmean + 1e-9 && s.gmean <= s.max + 1e-9);
        prop_assert!(s.variance >= 0.0);
    }

    /// t-quantiles are monotone in confidence and decrease with df.
    #[test]
    fn t_quantile_monotonicity(df in 1usize..60) {
        let q90 = t_quantile(0.90, df);
        let q95 = t_quantile(0.95, df);
        let q99 = t_quantile(0.99, df);
        prop_assert!(q90 < q95 && q95 < q99);
        if df > 1 {
            prop_assert!(t_quantile(0.95, df) < t_quantile(0.95, df - 1) + 1e-9);
        }
    }

    /// The 95% CI contains the sample mean and widens with confidence.
    #[test]
    fn ci_contains_mean(samples in prop::collection::vec(1.0f64..100.0, 2..20)) {
        let ci95 = confidence_interval(&samples, 0.95);
        let ci99 = confidence_interval(&samples, 0.99);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!(ci95.contains(mean));
        prop_assert!(ci99.half_width >= ci95.half_width);
    }
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Alu),
        (0u64..8).prop_map(|l| Instr::Load {
            loc: Loc::SharedRw(l),
            ord: AccessOrd::Plain
        }),
        (0u64..8).prop_map(|l| Instr::Store {
            loc: Loc::SharedRw(l),
            ord: AccessOrd::Plain
        }),
        (0u64..8).prop_map(|l| Instr::Load {
            loc: Loc::Private(l),
            ord: AccessOrd::Plain
        }),
        Just(Instr::Fence(FenceKind::DmbIsh)),
        Just(Instr::Fence(FenceKind::DmbIshSt)),
        Just(Instr::Fence(FenceKind::DmbIshLd)),
        (1u32..200).prop_map(|c| Instr::Compute { cycles: c }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulator is deterministic: identical (program, ctx, seed) give
    /// identical wall times, for arbitrary programs.
    #[test]
    fn simulation_deterministic(
        body in prop::collection::vec(arb_instr(), 1..60),
        threads in 1usize..4,
        seed in 0u64..500,
    ) {
        let machine = Machine::new(armv8_xgene1());
        let prog = Program::new(vec![body; threads]);
        let ctx = WorkloadCtx::default();
        let a = machine.run(&prog, &ctx, seed);
        let b = machine.run(&prog, &ctx, seed);
        prop_assert_eq!(a.wall_ns, b.wall_ns);
        prop_assert_eq!(a.core_cycles, b.core_cycles);
    }

    /// Time advances: every program takes positive time, and appending an
    /// instruction never makes a single-threaded program faster.
    #[test]
    fn time_is_monotone_in_program_length(
        body in prop::collection::vec(arb_instr(), 1..40),
        extra in arb_instr(),
    ) {
        let machine = Machine::new(power7());
        let ctx = WorkloadCtx {
            l1_miss_rate: 0.0,
            dram_frac: 0.0,
            noise_amp: 0.0,
            ..WorkloadCtx::default()
        };
        let t1 = machine.run(&Program::new(vec![body.clone()]), &ctx, 7).wall_ns;
        let mut longer = body;
        longer.push(extra);
        let t2 = machine.run(&Program::new(vec![longer]), &ctx, 7).wall_ns;
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 >= t1 - 1e-9, "t1={t1} t2={t2}");
    }

    /// Padding preserves measured size for any sequence and target.
    #[test]
    fn pad_to_exact(n in 0usize..12, target_extra in 0u64..8) {
        let seq = vec![Instr::Alu; n];
        let target = seq_size(&seq) + target_extra;
        let padded = pad_to(seq, target);
        prop_assert_eq!(seq_size(&padded), target);
    }

    /// SplitMix64 chance() respects probability bounds statistically.
    #[test]
    fn rng_chance_bounds(seed in 0u64..5000) {
        let mut rng = SplitMix64::new(seed);
        let hits = (0..400).filter(|_| rng.chance(0.25)).count();
        // Loose 6-sigma band around 100.
        prop_assert!((40..180).contains(&hits), "hits={hits}");
    }
}
