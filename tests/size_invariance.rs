//! The size-invariance property on *real* workload images: every strategy
//! and injection variant of a linked program occupies exactly the same
//! number of instruction words (§4.1/§4.3 of the paper — the point of the
//! nop-padded base case and the binary rewriting).

use wmm::wmm_bench::{jvm_envelope, kernel_envelope};
use wmm::wmm_jvm::jit::JitConfig;
use wmm::wmm_jvm::strategy::{arm_jdk8_barriers, arm_storestore_as_full};
use wmm::wmm_kernel::rbd::{rbd_strategy, RbdStrategy};
use wmm::wmm_sim::arch::Arch;
use wmm::wmm_workloads::dacapo::{profile, DacapoBench};
use wmm::wmm_workloads::kernel::{kernel_profile, KernelBench};
use wmm::wmmbench::costfn::CostFunction;
use wmm::wmmbench::image::{program_words, Injection, SiteRewriter};
use wmm::wmmbench::runner::BenchSpec;

#[test]
fn jvm_images_are_size_invariant_across_strategies_and_injection() {
    let bench = DacapoBench::new(profile("spark").unwrap(), JitConfig::jdk8(Arch::ArmV8), 0.2);
    let image = bench.image(11);
    let env = jvm_envelope(Arch::ArmV8);
    let base = arm_jdk8_barriers();
    let modified = arm_storestore_as_full();
    let cf = CostFunction {
        iters: 1 << 7,
        stack_spill: false,
    };
    let programs = [
        SiteRewriter::new(&base, Injection::None, env.clone()).link(&image),
        SiteRewriter::new(&modified, Injection::None, env.clone()).link(&image),
        SiteRewriter::new(&base, Injection::All(cf), env.clone()).link(&image),
    ];
    let sz = program_words(&programs[0]);
    assert!(sz > 1000, "image should be non-trivial: {sz} words");
    for p in &programs[1..] {
        assert_eq!(program_words(p), sz);
    }
}

#[test]
fn kernel_images_are_size_invariant_across_all_six_rbd_strategies() {
    let bench = KernelBench::new(kernel_profile("netperf_udp").unwrap(), 0.2);
    let image = bench.image(3);
    let env = kernel_envelope();
    let mut sizes = vec![];
    for s in RbdStrategy::ALL {
        let strat = rbd_strategy(s);
        let rw = SiteRewriter::new(&strat, Injection::None, env.clone());
        sizes.push(program_words(&rw.link(&image)));
    }
    assert!(sizes.iter().all(|&s| s == sizes[0]), "sizes {sizes:?}");
}

#[test]
fn injected_cost_size_does_not_change_code_size() {
    // The whole point of Fig. 2/3's `mov N` encoding: the loop count is an
    // immediate, so sweeping the cost size never perturbs layout.
    let bench = KernelBench::new(kernel_profile("lmbench").unwrap(), 0.2);
    let image = bench.image(5);
    let env = kernel_envelope();
    let strat = rbd_strategy(RbdStrategy::BaseCase);
    let mut sizes = vec![];
    for e in [0u32, 4, 8, 12] {
        let cf = CostFunction {
            iters: 1 << e,
            stack_spill: true,
        };
        let rw = SiteRewriter::new(
            &strat,
            Injection::At(wmm::wmm_kernel::macros::KMacro::ReadBarrierDepends, cf),
            env.clone(),
        );
        sizes.push(program_words(&rw.link(&image)));
    }
    assert!(sizes.iter().all(|&s| s == sizes[0]), "sizes {sizes:?}");
}
