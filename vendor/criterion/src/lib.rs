//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the Criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Timing model: each benchmark closure is warmed up briefly, then timed
//! over enough iterations to fill a short measurement window; the mean and
//! min per-iteration times are printed. No statistics files are produced.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(750);

/// Drives benchmark execution. Mirrors `criterion::Criterion` in name only.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`, repeating it to fill the measurement window.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up, and estimate a single-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / warm_iters.max(1) as f64;

        // Measure in batches of roughly 1/20th of the window.
        let batch = ((MEASURE.as_secs_f64() / 20.0 / per_iter).ceil() as u64).max(1);
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: vec![] };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<40} mean {:>12}   min {:>12}   ({} samples)",
        human(mean),
        human(min),
        b.samples.len()
    );
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== {name} ==");
        BenchmarkGroup {
            _parent: self,
            group: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.group, id), &mut f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// A two-part benchmark identifier, `function/parameter`.
pub struct BenchmarkId {
    s: String,
}

impl BenchmarkId {
    /// Build an id from a function name and parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            s: format!("{function}/{parameter}"),
        }
    }

    /// Build an id from a parameter alone (the group supplies the function
    /// part).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            s: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.s)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
