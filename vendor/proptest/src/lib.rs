//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the proptest API the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with an optional `#![proptest_config(..)]`),
//! - [`Strategy`] with `prop_map`, numeric range strategies, [`Just`],
//!   [`prop_oneof!`], and `prop::collection::vec`,
//! - `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! case index and RNG seed so it can be replayed deterministically. Cases
//! are generated from a fixed base seed, making test runs reproducible.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A value generator. The shim's analogue of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Uniform choice between boxed alternatives — the engine of [`prop_oneof!`].
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Runner configuration. Mirrors `proptest::test_runner::Config` in name
/// only; `cases` is the single supported knob.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configure the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Run `body` over `config.cases` generated inputs, panicking with the case
/// index and seed on the first failure.
pub fn run_cases<F: FnMut(&mut TestRng) -> Result<(), String>>(
    config: &ProptestConfig,
    test_name: &str,
    mut body: F,
) {
    const BASE_SEED: u64 = 0x005E_ED0F_7E57_CA5E;
    for case in 0..config.cases {
        let seed = BASE_SEED ^ ((case as u64) << 17);
        let mut rng = TestRng::new(seed);
        if let Err(msg) = body(&mut rng) {
            panic!(
                "proptest case {case}/{} failed for `{test_name}` (seed {seed:#x}): {msg}",
                config.cases
            );
        }
    }
}

/// `prop::collection` etc. — the path-style accessors the prelude exposes.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::Range;

        /// Strategy for `Vec`s whose length is drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Assert inside a proptest body; failures abort only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests. Accepts the same shape as the real macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u64..10, v in prop::collection::vec(0u32..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
